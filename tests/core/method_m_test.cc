#include "core/method_m.hpp"

#include <gtest/gtest.h>

#include "../test_util.hpp"
#include "core/options.hpp"

namespace gcp {
namespace {

using testing::MakeCycle;
using testing::MakePath;
using testing::MakeSingleton;

GraphDataset SmallDataset() {
  GraphDataset ds;
  ds.Bootstrap({
      MakePath({0, 1}),        // 0: C-O
      MakePath({0, 0, 1}),     // 1: C-C-O
      MakeCycle({0, 0, 0}),    // 2: C-ring
      MakeSingleton(2),        // 3: N
  });
  return ds;
}

TEST(MethodMTest, SubgraphDirectionVerifiesPatternInDataset) {
  const GraphDataset ds = SmallDataset();
  const MethodM m(MatcherKind::kVf2, ds);
  std::uint64_t tests = 0;
  const DynamicBitset verified = m.VerifyCandidates(
      MakePath({0, 1}), QueryKind::kSubgraph, ds.LiveMask(), &tests);
  EXPECT_EQ(tests, 4u);
  EXPECT_EQ(verified.ToVector(), (std::vector<std::size_t>{0, 1}));
}

TEST(MethodMTest, SupergraphDirectionSwapsRoles) {
  const GraphDataset ds = SmallDataset();
  const MethodM m(MatcherKind::kVf2Plus, ds);
  // Which dataset graphs are contained in C-C-O?
  const DynamicBitset verified = m.VerifyCandidates(
      MakePath({0, 0, 1}), QueryKind::kSupergraph, ds.LiveMask(), nullptr);
  EXPECT_EQ(verified.ToVector(), (std::vector<std::size_t>{0, 1}));
}

TEST(MethodMTest, RespectsCandidateSubset) {
  const GraphDataset ds = SmallDataset();
  const MethodM m(MatcherKind::kGraphQl, ds);
  DynamicBitset candidates(4);
  candidates.Set(1);  // only graph 1 considered
  std::uint64_t tests = 0;
  const DynamicBitset verified = m.VerifyCandidates(
      MakePath({0, 1}), QueryKind::kSubgraph, candidates, &tests);
  EXPECT_EQ(tests, 1u);
  EXPECT_EQ(verified.ToVector(), (std::vector<std::size_t>{1}));
}

TEST(MethodMTest, EmptyCandidatesZeroTests) {
  const GraphDataset ds = SmallDataset();
  const MethodM m(MatcherKind::kVf2, ds);
  std::uint64_t tests = 0;
  const DynamicBitset verified = m.VerifyCandidates(
      MakePath({0, 1}), QueryKind::kSubgraph, DynamicBitset(4), &tests);
  EXPECT_EQ(tests, 0u);
  EXPECT_TRUE(verified.None());
}

TEST(MethodMTest, ParallelPoolMatchesSerial) {
  const GraphDataset ds = SmallDataset();
  ThreadPool pool(3);
  const MethodM serial(MatcherKind::kVf2, ds);
  const MethodM parallel(MatcherKind::kVf2, ds, &pool);
  const Graph q = MakePath({0, 0});
  EXPECT_EQ(
      serial.VerifyCandidates(q, QueryKind::kSubgraph, ds.LiveMask()),
      parallel.VerifyCandidates(q, QueryKind::kSubgraph, ds.LiveMask()));
}

TEST(MethodMTest, TestsAccumulateAcrossCalls) {
  const GraphDataset ds = SmallDataset();
  const MethodM m(MatcherKind::kVf2, ds);
  std::uint64_t tests = 0;
  m.VerifyCandidates(MakePath({0, 1}), QueryKind::kSubgraph, ds.LiveMask(),
                     &tests);
  m.VerifyCandidates(MakePath({0, 0}), QueryKind::kSubgraph, ds.LiveMask(),
                     &tests);
  EXPECT_EQ(tests, 8u);
}

TEST(MethodMTest, KindAndMatcherNameExposed) {
  const GraphDataset ds = SmallDataset();
  const MethodM m(MatcherKind::kGraphQl, ds);
  EXPECT_EQ(m.kind(), MatcherKind::kGraphQl);
  EXPECT_EQ(m.matcher().name(), "GQL");
}

TEST(CacheModelNameTest, Names) {
  EXPECT_EQ(CacheModelName(CacheModel::kEvi), "EVI");
  EXPECT_EQ(CacheModelName(CacheModel::kCon), "CON");
}

}  // namespace
}  // namespace gcp
