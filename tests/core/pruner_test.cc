// Candidate Set Pruner unit tests, including the paper's Figure 3(a) and
// 3(b) examples verbatim.

#include "core/pruner.hpp"

#include <gtest/gtest.h>

#include "../test_util.hpp"

namespace gcp {
namespace {

using testing::MakePath;

DynamicBitset Bits(std::size_t n, std::initializer_list<std::size_t> set) {
  DynamicBitset b(n);
  for (const auto i : set) b.Set(i);
  return b;
}

DiscoveredHit MakeHitEntry(std::size_t horizon,
                           std::initializer_list<std::size_t> answer,
                           std::initializer_list<std::size_t> valid) {
  DiscoveredHit e;
  e.id = 1;
  e.answer = Bits(horizon, answer);
  e.valid = Bits(horizon, valid);
  return e;
}

TEST(PrunerTest, NoHitsKeepsCandidatesIntact) {
  DiscoveredHits hits;
  const DynamicBitset csm = Bits(5, {1, 2, 3, 4});
  QueryMetrics m;
  const PruneOutcome out = CandidateSetPruner::Prune(hits, csm, &m);
  EXPECT_FALSE(out.direct);
  EXPECT_EQ(out.candidates, csm);
  EXPECT_TRUE(out.answer_direct.None());
  EXPECT_EQ(out.saved_positive, 0u);
  EXPECT_EQ(out.saved_pruning, 0u);
  EXPECT_EQ(m.candidates_final, 4u);
}

TEST(PrunerTest, PaperFigure3aSubgraphCase) {
  // CS_M(g) = {G1, G2, G3, G4}; cached g' with g ⊆ g',
  // Answer(g') = {G2, G3}, CGvalid(g') = {G2}.
  // Expected: Answer_sub = {G2}; CS = {G1, G3, G4}.
  const DynamicBitset csm = Bits(5, {1, 2, 3, 4});
  const DiscoveredHit g_prime = MakeHitEntry(5, /*answer=*/{2, 3},
                                           /*valid=*/{2});
  DiscoveredHits hits;
  hits.positive.push_back(g_prime);
  QueryMetrics m;
  const PruneOutcome out = CandidateSetPruner::Prune(hits, csm, &m);
  EXPECT_FALSE(out.direct);
  EXPECT_EQ(out.answer_direct, Bits(5, {2}));
  EXPECT_EQ(out.candidates, Bits(5, {1, 3, 4}));
  EXPECT_EQ(out.saved_positive, 1u);
  EXPECT_EQ(out.saved_pruning, 0u);
}

TEST(PrunerTest, PaperFigure3bSupergraphCase) {
  // CS_M(g) = {G1, G2, G3, G4}; cached g'' with g'' ⊆ g,
  // Answer(g'') = {G2, G3}, CGvalid(g'') = {G2, G3, G4}.
  // Formula (4): ¬CGvalid ∪ Answer = {G0, G1} ∪ {G2, G3} (over horizon 5).
  // Expected: CS = CS_M ∩ that = {G1, G2, G3} — G4 is sub-iso test free.
  const DynamicBitset csm = Bits(5, {1, 2, 3, 4});
  const DiscoveredHit g_dprime = MakeHitEntry(5, /*answer=*/{2, 3},
                                            /*valid=*/{2, 3, 4});
  DiscoveredHits hits;
  hits.pruning.push_back(g_dprime);
  QueryMetrics m;
  const PruneOutcome out = CandidateSetPruner::Prune(hits, csm, &m);
  EXPECT_FALSE(out.direct);
  EXPECT_TRUE(out.answer_direct.None());
  EXPECT_EQ(out.candidates, Bits(5, {1, 2, 3}));
  EXPECT_EQ(out.saved_positive, 0u);
  EXPECT_EQ(out.saved_pruning, 1u);
}

TEST(PrunerTest, CombinedSubThenSuper) {
  // §6.3 "putting it all together": formula (2) first, then (5).
  const DynamicBitset csm = Bits(6, {0, 1, 2, 3, 4, 5});
  const DiscoveredHit positive = MakeHitEntry(6, {0, 1}, {0, 1, 2, 3, 4, 5});
  const DiscoveredHit pruning = MakeHitEntry(6, {0, 1, 2}, {0, 1, 2, 3, 4});
  // positive: transfers {0,1}; remaining CS = {2,3,4,5};
  // pruning: possible = ¬{0..4} ∪ {0,1,2} = {0,1,2,5}; CS ∩ = {2,5}.
  DiscoveredHits hits;
  hits.positive.push_back(positive);
  hits.pruning.push_back(pruning);
  QueryMetrics m;
  const PruneOutcome out = CandidateSetPruner::Prune(hits, csm, &m);
  EXPECT_EQ(out.answer_direct, Bits(6, {0, 1}));
  EXPECT_EQ(out.candidates, Bits(6, {2, 5}));
  EXPECT_EQ(out.saved_positive, 2u);
  EXPECT_EQ(out.saved_pruning, 2u);
  EXPECT_EQ(m.tests_saved_sub, 2u);
  EXPECT_EQ(m.tests_saved_super, 2u);
}

TEST(PrunerTest, MultiplePositiveHitsUnion) {
  // Formula (1) is a union over all sub-hits.
  const DynamicBitset csm = Bits(4, {0, 1, 2, 3});
  const DiscoveredHit h1 = MakeHitEntry(4, {0, 1}, {0, 3});   // contributes {0}
  const DiscoveredHit h2 = MakeHitEntry(4, {1, 2}, {1, 2});   // contributes {1,2}
  DiscoveredHits hits;
  hits.positive.push_back(h1);
  hits.positive.push_back(h2);
  const PruneOutcome out = CandidateSetPruner::Prune(hits, csm, nullptr);
  EXPECT_EQ(out.answer_direct, Bits(4, {0, 1, 2}));
  EXPECT_EQ(out.candidates, Bits(4, {3}));
}

TEST(PrunerTest, MultiplePruningHitsIntersect) {
  // Formula (5) intersects over all super-hits.
  const DynamicBitset csm = Bits(4, {0, 1, 2, 3});
  const DiscoveredHit h1 = MakeHitEntry(4, {0, 1}, {0, 1, 2, 3});  // possible {0,1}
  const DiscoveredHit h2 = MakeHitEntry(4, {1, 2}, {0, 1, 2, 3});  // possible {1,2}
  DiscoveredHits hits;
  hits.pruning.push_back(h1);
  hits.pruning.push_back(h2);
  const PruneOutcome out = CandidateSetPruner::Prune(hits, csm, nullptr);
  EXPECT_EQ(out.candidates, Bits(4, {1}));
  EXPECT_EQ(out.saved_pruning, 3u);
}

TEST(PrunerTest, InvalidBitsNeutralizePruningHit) {
  // A fully-invalid pruning hit may not eliminate anything: formula (4)
  // complement covers the whole horizon.
  const DynamicBitset csm = Bits(3, {0, 1, 2});
  const DiscoveredHit h = MakeHitEntry(3, {}, {});  // valid = ∅
  DiscoveredHits hits;
  hits.pruning.push_back(h);
  const PruneOutcome out = CandidateSetPruner::Prune(hits, csm, nullptr);
  EXPECT_EQ(out.candidates, csm);
}

TEST(PrunerTest, ExactHitShortCircuits) {
  const DynamicBitset csm = Bits(4, {0, 1, 3});
  DiscoveredHit exact = MakeHitEntry(4, {1, 2}, {0, 1, 2, 3});
  DiscoveredHits hits;
  hits.exact = exact;
  QueryMetrics m;
  const PruneOutcome out = CandidateSetPruner::Prune(hits, csm, &m);
  EXPECT_TRUE(out.direct);
  // Answer restricted to live graphs: {1, 2} ∩ {0, 1, 3} = {1}.
  EXPECT_EQ(out.answer_direct, Bits(4, {1}));
  EXPECT_TRUE(out.candidates.None());
  EXPECT_EQ(out.saved_positive, 3u);  // all |CS_M| tests alleviated
  EXPECT_TRUE(m.exact_hit || m.tests_saved_sub == 3u);
}

TEST(PrunerTest, EmptyProofShortCircuits) {
  const DynamicBitset csm = Bits(4, {0, 1, 2, 3});
  DiscoveredHit proof = MakeHitEntry(4, {}, {0, 1, 2, 3});
  DiscoveredHits hits;
  hits.empty_proof = proof;
  QueryMetrics m;
  const PruneOutcome out = CandidateSetPruner::Prune(hits, csm, &m);
  EXPECT_TRUE(out.direct);
  EXPECT_TRUE(out.answer_direct.None());
  EXPECT_TRUE(out.candidates.None());
  EXPECT_EQ(out.saved_pruning, 4u);
}

TEST(PrunerTest, EmptyCsmDegenerate) {
  DiscoveredHits hits;
  const DynamicBitset csm(0);
  const PruneOutcome out = CandidateSetPruner::Prune(hits, csm, nullptr);
  EXPECT_TRUE(out.candidates.None());
  EXPECT_TRUE(out.answer_direct.None());
}

}  // namespace
}  // namespace gcp
