// Sharded-engine stress under TSan: client threads firing mixed queries
// against an 8-shard engine with the dedicated maintenance thread on,
// while a mutator races dataset changes through the stop-the-world
// barrier. Asserts the structural invariants the architecture promises:
//   * every query completes and answers only live-horizon ids;
//   * a per-shard drain NEVER takes another shard's lock (the DrainScope
//     violation counter stays zero) — the "drain on shard k never blocks
//     shard j" property, asserted rather than assumed;
//   * the maintenance thread actually woke and drained;
//   * quiescent stores are coherent after the storm.
// Per-query answer references are ill-defined under racing mutators (the
// interleaving is nondeterministic); bit-exactness is covered by
// sharded_equivalence_test and concurrent_stress_test.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "core/graphcache_plus.hpp"
#include "dataset/aids_like.hpp"
#include "workload/type_a.hpp"

namespace gcp {
namespace {

constexpr std::size_t kThreads = 4;
constexpr std::size_t kQueries = 96;
constexpr std::size_t kShards = 8;

std::vector<Graph> SmallCorpus() {
  AidsLikeOptions opts;
  opts.num_graphs = 50;
  opts.mean_vertices = 9.0;
  opts.stddev_vertices = 3.0;
  opts.min_vertices = 4;
  opts.max_vertices = 14;
  opts.num_labels = 8;
  opts.seed = 777;
  return AidsLikeGenerator(opts).Generate();
}

GraphCachePlusOptions StressOptions(CacheModel model) {
  GraphCachePlusOptions opts;
  opts.model = model;
  opts.cache_capacity = 16;
  opts.window_capacity = 4;
  opts.num_shards = kShards;
  opts.maintenance_thread = true;
  // Short timer + tiny queues: exercise timer wakeups, pressure wakeups
  // AND the backpressure (inline per-shard drain) path.
  opts.maintenance_interval_us = 100;
  opts.maintenance_queue_capacity = 4;
  return opts;
}

QueryKind KindOf(std::size_t query_idx) {
  return query_idx % 2 == 0 ? QueryKind::kSubgraph : QueryKind::kSupergraph;
}

void RunStorm(CacheModel model) {
  const std::vector<Graph> corpus = SmallCorpus();
  const Workload w = GenerateTypeAByName(corpus, "ZU", kQueries, /*seed=*/31,
                                         /*zipf_alpha=*/1.2);

  GraphDataset ds;
  ds.Bootstrap(corpus);
  GraphCachePlus gc(&ds, StressOptions(model));

  std::atomic<std::size_t> ticket{0};
  std::atomic<bool> clients_done{false};
  std::atomic<std::uint64_t> answered{0};
  std::atomic<std::uint64_t> max_answer_id{0};

  std::vector<std::thread> clients;
  for (std::size_t t = 0; t < kThreads; ++t) {
    clients.emplace_back([&] {
      for (std::size_t i = ticket.fetch_add(1); i < w.size();
           i = ticket.fetch_add(1)) {
        const QueryResult r = gc.Query(w.queries[i].query, KindOf(i));
        if (!r.answer.empty()) {
          std::uint64_t seen = max_answer_id.load();
          while (seen < r.answer.back() &&
                 !max_answer_id.compare_exchange_weak(seen, r.answer.back())) {
          }
        }
        answered.fetch_add(1);
      }
    });
  }
  // Mutator races the clients (and the maintenance thread) through the
  // stop-the-world barrier.
  std::thread mutator([&] {
    std::size_t round = 0;
    while (!clients_done.load()) {
      gc.ApplyDatasetChanges([&corpus, &round](GraphDataset& d) {
        d.AddGraph(corpus[round % corpus.size()]);
        const std::vector<GraphId> live = d.LiveIds();
        if (live.size() > corpus.size() / 2) {
          d.DeleteGraph(live[(3 * round) % live.size()]).ok();
        }
        ++round;
      });
      std::this_thread::yield();
    }
  });
  for (auto& c : clients) c.join();
  clients_done.store(true);
  mutator.join();

  gc.FlushMaintenance();
  EXPECT_EQ(answered.load(), w.size());
  EXPECT_LT(max_answer_id.load(), gc.dataset().IdHorizon());
  EXPECT_EQ(gc.AggregateSnapshot().queries, w.size());

  // THE sharding invariant: no per-shard drain ever acquired a foreign
  // shard's lock, however the storm interleaved.
  EXPECT_EQ(gc.cache_shards().lock_violations(), 0u);

  // The dedicated thread really ran drains (timer or pressure). On a
  // loaded 1-core runner the thread may not have been scheduled yet when
  // the clients finish — give it a bounded window to take its first tick.
  ASSERT_NE(gc.maintenance_thread(), nullptr);
  for (int spin = 0; spin < 2000 && gc.maintenance_thread()->wakeups() == 0;
       ++spin) {
    std::this_thread::sleep_for(std::chrono::microseconds(100));
  }
  EXPECT_GT(gc.maintenance_thread()->wakeups(), 0u);

  // Coherent quiescent stores: force a final sync, then every resident
  // indicator must be aligned to the horizon and every store within its
  // per-shard capacity.
  gc.Query(w.queries[0].query, QueryKind::kSubgraph);
  gc.FlushMaintenance();
  const std::size_t horizon = gc.dataset().IdHorizon();
  gc.cache_shards().ForEachEntry([&](const CachedQuery& e) {
    EXPECT_EQ(e.valid.size(), horizon);
    EXPECT_EQ(e.answer.size(), horizon);
  });
  const std::size_t per_shard_cache = (16 + kShards - 1) / kShards;
  for (std::size_t s = 0; s < kShards; ++s) {
    EXPECT_LE(gc.cache_shards().shard(s).cache_size(), per_shard_cache);
  }
}

TEST(ShardedStressTest, MaintenanceThreadStormCon) {
  RunStorm(CacheModel::kCon);
}

TEST(ShardedStressTest, MaintenanceThreadStormEvi) {
  RunStorm(CacheModel::kEvi);
}

}  // namespace
}  // namespace gcp
