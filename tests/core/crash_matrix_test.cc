// Crash-recovery matrix (PR 8): a checkpointing engine is killed at every
// injected fault point (open / write / fsync / rename, swept by global op
// index), restarted against an identically-replayed dataset lineage, and
// must recover to the last good checkpoint or a cold start — never a
// crash, never a silently-wrong cache. Every restarted engine's answers
// are compared bit-exactly against a cold-start uncached Method M oracle.
// Engine-level corruption (bit flips, truncation, foreign bytes) rides on
// top of the byte-level sweeps in checkpoint_test: here a bad newest
// sibling must degrade to the older one, and an all-bad directory must
// cold-start.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "../test_util.hpp"
#include "cache/checkpoint.hpp"
#include "common/io.hpp"
#include "core/graphcache_plus.hpp"

namespace gcp {
namespace {

using testing::MakeCycle;
using testing::MakePath;
using testing::MakeSingleton;
using testing::MakeStar;

/// Crash model: the process dies at file-op `at` — that operation and
/// every one after it fail. (ScriptedFaultInjector's single-shot fault
/// models a *transient* I/O error instead; both sweeps run below.)
class CrashAtInjector : public FaultInjector {
 public:
  explicit CrashAtInjector(std::uint64_t at) : at_(at) {}

  Decision OnOp(Op /*op*/, const std::string& /*path*/,
                std::size_t /*len*/) override {
    std::lock_guard<std::mutex> lock(mu_);
    Decision d;
    if (seen_++ >= at_) {
      fired_ = true;
      d.status = Status::IOError("crashed here");
    }
    return d;
  }

  bool fired() const {
    std::lock_guard<std::mutex> lock(mu_);
    return fired_;
  }

 private:
  mutable std::mutex mu_;
  std::uint64_t at_ = 0;
  std::uint64_t seen_ = 0;
  bool fired_ = false;
};

std::vector<Graph> Corpus() {
  return {MakePath({0, 0, 1}),    MakePath({0, 1}),
          MakeCycle({0, 0, 0}),   MakePath({2, 0, 1}),
          MakeSingleton(2),       MakeStar({1, 0, 0, 2}),
          MakeCycle({1, 2, 1, 2}), MakePath({0, 1, 2, 0})};
}

std::vector<Graph> Queries() {
  return {MakePath({0, 1}),    MakeSingleton(0),     MakePath({0, 0}),
          MakeCycle({0, 0, 0}), MakePath({1, 2}),    MakeSingleton(2),
          MakePath({0, 1, 2}), MakeStar({1, 0, 0})};
}

/// One deterministic dataset mutation per step. Replaying the same steps
/// onto a freshly bootstrapped dataset reproduces the change log exactly,
/// which is how a "restarted process" regains the lineage a checkpoint
/// was cut from.
constexpr int kMutationSteps = 5;

void Mutate(GraphDataset& ds, int step) {
  switch (step) {
    case 0: ds.AddGraph(MakePath({2, 2})); break;
    case 1: ASSERT_TRUE(ds.RemoveEdge(0, 0, 1).ok()); break;
    case 2: ds.AddGraph(MakeCycle({2, 0, 2})); break;
    case 3: ASSERT_TRUE(ds.DeleteGraph(4).ok()); break;
    case 4: ASSERT_TRUE(ds.AddEdge(0, 0, 1).ok()); break;
    default: FAIL() << "no such mutation step " << step;
  }
}

void ReplayLineage(GraphDataset& ds, int upto_step) {
  ds.Bootstrap(Corpus());
  for (int s = 0; s < upto_step; ++s) Mutate(ds, s);
}

GraphCachePlusOptions EngineOptions(const std::string& dir,
                                    FaultInjector* fault, bool epoch) {
  GraphCachePlusOptions opts;
  opts.model = CacheModel::kCon;
  opts.cache_capacity = 8;
  opts.window_capacity = 2;
  opts.num_shards = 2;
  opts.epoch_reads = epoch;
  opts.checkpoint_dir = dir;
  opts.checkpoint_keep = 4;
  opts.checkpoint_fault_injector = fault;
  return opts;
}

GraphCachePlusOptions OracleOptions() {
  GraphCachePlusOptions opts;
  opts.model = CacheModel::kCon;
  opts.enable_admission = false;
  opts.enable_exact_shortcut = false;
  opts.enable_empty_answer_shortcut = false;
  return opts;
}

std::vector<std::vector<GraphId>> RunQueries(GraphCachePlus& gc) {
  std::vector<std::vector<GraphId>> answers;
  for (const Graph& q : Queries()) {
    answers.push_back(gc.SubgraphQuery(q).answer);
  }
  return answers;
}

/// Ground truth: a cold uncached Method M pass over the same lineage.
std::vector<std::vector<GraphId>> OracleAnswers() {
  GraphDataset ds;
  ReplayLineage(ds, kMutationSteps);
  GraphCachePlus gc(&ds, OracleOptions());
  return RunQueries(gc);
}

/// The seed run every scenario shares: warm the cache, checkpoint, keep
/// mutating, checkpoint again, mutate once more so the newest committed
/// checkpoint is stale vs the final dataset (recovery must fast-forward
/// through the change-log suffix). Checkpoint failures are expected when
/// a fault is armed — the run itself must never crash.
void SeedRun(const std::string& dir, FaultInjector* fault) {
  GraphDataset ds;
  ds.Bootstrap(Corpus());
  GraphCachePlus gc(&ds, EngineOptions(dir, fault, /*epoch=*/false));
  RunQueries(gc);
  Mutate(ds, 0);
  RunQueries(gc);
  Mutate(ds, 1);
  RunQueries(gc);
  gc.FlushMaintenance();
  (void)gc.CheckpointNow();  // last-good candidate #1
  Mutate(ds, 2);
  RunQueries(gc);
  Mutate(ds, 3);
  RunQueries(gc);
  gc.FlushMaintenance();
  (void)gc.CheckpointNow();  // last-good candidate #2
  Mutate(ds, 4);
  RunQueries(gc);
}

std::string FreshDir(const std::string& name) {
  const std::string dir = ::testing::TempDir() + "/" + name;
  EXPECT_TRUE(EnsureDirectory(dir).ok());
  EXPECT_TRUE(PruneCheckpoints(dir, 0).ok());
  return dir;
}

std::string NewestCheckpointPath(const std::string& dir) {
  const std::vector<std::uint64_t> seqs = ListCheckpointSeqs(dir);
  EXPECT_FALSE(seqs.empty());
  return dir + "/" + CheckpointFileName(seqs.front());
}

/// Restart against the full lineage and demand exact answers. Returns the
/// restart report for outcome assertions.
GraphCachePlus::WarmRestartReport RestartAndCheck(
    const std::string& dir, const std::vector<std::vector<GraphId>>& oracle,
    bool epoch = false) {
  GraphDataset ds;
  ReplayLineage(ds, kMutationSteps);
  GraphCachePlus gc(&ds, EngineOptions(dir, nullptr, epoch));
  GraphCachePlus::WarmRestartReport report;
  EXPECT_TRUE(gc.WarmRestart(&report).ok());
  EXPECT_EQ(RunQueries(gc), oracle);
  return report;
}

TEST(CrashMatrixTest, CrashAtEveryFaultPointRecoversToLastGoodOrCold) {
  const std::vector<std::vector<GraphId>> oracle = OracleAnswers();
  std::size_t cold_starts = 0;
  std::size_t warm_starts = 0;
  // Sweep the crash point over the global file-op index until a full
  // seed run completes with the crash never firing — at that point every
  // op has hosted a crash once.
  for (std::size_t k = 0;; ++k) {
    const std::string dir = FreshDir("crash_matrix");
    CrashAtInjector fault(k);
    SeedRun(dir, &fault);
    const bool fired = fault.fired();
    const auto report = RestartAndCheck(dir, oracle);
    if (report.warm) {
      ++warm_starts;
      EXPECT_GT(report.entries, 0u) << "crash at op " << k;
    } else {
      ++cold_starts;
      EXPECT_EQ(report.entries, 0u) << "crash at op " << k;
    }
    if (!fired) break;
    ASSERT_LT(k, 64u) << "fault-point sweep failed to terminate";
  }
  // Both outcomes must have been exercised: a crash during checkpoint #1
  // leaves nothing to recover (cold start), a crash during #2 leaves #1
  // (last-good), and the final crash-free pass is trivially warm.
  EXPECT_GT(cold_starts, 0u);
  EXPECT_GT(warm_starts, 0u);
}

TEST(CrashMatrixTest, TransientFaultAtEveryPointStillLeavesACheckpoint) {
  const std::vector<std::vector<GraphId>> oracle = OracleAnswers();
  // A single transient I/O error (one op fails, the process carries on)
  // can sink at most one of the two checkpoints, so every restart in
  // this sweep must come up warm.
  for (std::size_t k = 0;; ++k) {
    const std::string dir = FreshDir("transient_matrix");
    ScriptedFaultInjector fault;
    fault.FailAt(k, Status::IOError("transient"));
    SeedRun(dir, &fault);
    const bool fired = fault.fired();
    const auto report = RestartAndCheck(dir, oracle);
    EXPECT_TRUE(report.warm) << "transient fault at op " << k;
    EXPECT_GT(report.entries, 0u) << "transient fault at op " << k;
    if (!fired) break;
    ASSERT_LT(k, 64u) << "fault-point sweep failed to terminate";
  }
}

TEST(CrashMatrixTest, BitFlipInNewestDegradesToLastGood) {
  const std::vector<std::vector<GraphId>> oracle = OracleAnswers();
  const std::string dir = FreshDir("crash_bitflip");
  SeedRun(dir, nullptr);
  ASSERT_EQ(ListCheckpointSeqs(dir).size(), 2u);
  const std::string newest = NewestCheckpointPath(dir);
  auto bytes = ReadFileToString(newest);
  ASSERT_TRUE(bytes.ok());
  // Flip one bit in several spots across the envelope (header, meta,
  // body, footer regions); each corrupted newest must be rejected and
  // recovery must land on the older sibling.
  const std::size_t n = bytes.value().size();
  for (const std::size_t at : {std::size_t{1}, n / 4, n / 2, n - 2}) {
    std::string corrupt = bytes.value();
    corrupt[at] = static_cast<char>(corrupt[at] ^ 0x04);
    {
      AtomicFileWriter w(newest);
      ASSERT_TRUE(w.Open().ok());
      ASSERT_TRUE(w.Append(corrupt).ok());
      ASSERT_TRUE(w.Commit().ok());
    }
    const auto report = RestartAndCheck(dir, oracle);
    EXPECT_TRUE(report.warm) << "flip at byte " << at;
    EXPECT_EQ(report.rejected, 1u) << "flip at byte " << at;
  }
}

TEST(CrashMatrixTest, TruncatedNewestDegradesToLastGood) {
  const std::vector<std::vector<GraphId>> oracle = OracleAnswers();
  const std::string dir = FreshDir("crash_truncate");
  SeedRun(dir, nullptr);
  const std::string newest = NewestCheckpointPath(dir);
  auto bytes = ReadFileToString(newest);
  ASSERT_TRUE(bytes.ok());
  const std::size_t n = bytes.value().size();
  // Torn write at a sweep of prefix lengths (0 = empty file).
  for (std::size_t k = 0; k < n; k += std::max<std::size_t>(1, n / 16)) {
    {
      AtomicFileWriter w(newest);
      ASSERT_TRUE(w.Open().ok());
      ASSERT_TRUE(w.Append(bytes.value().substr(0, k)).ok());
      ASSERT_TRUE(w.Commit().ok());
    }
    const auto report = RestartAndCheck(dir, oracle);
    EXPECT_TRUE(report.warm) << "truncated to " << k << " bytes";
    EXPECT_EQ(report.rejected, 1u) << "truncated to " << k << " bytes";
  }
}

TEST(CrashMatrixTest, AllSiblingsCorruptFallsBackToColdStart) {
  const std::vector<std::vector<GraphId>> oracle = OracleAnswers();
  const std::string dir = FreshDir("crash_all_bad");
  SeedRun(dir, nullptr);
  const std::vector<std::uint64_t> seqs = ListCheckpointSeqs(dir);
  ASSERT_EQ(seqs.size(), 2u);
  for (const std::uint64_t seq : seqs) {
    AtomicFileWriter w(dir + "/" + CheckpointFileName(seq));
    ASSERT_TRUE(w.Open().ok());
    ASSERT_TRUE(w.Append("GCPCHKPT v1\nnot really\n").ok());
    ASSERT_TRUE(w.Commit().ok());
  }
  const auto report = RestartAndCheck(dir, oracle);
  EXPECT_FALSE(report.warm);
  EXPECT_EQ(report.entries, 0u);
  EXPECT_EQ(report.rejected, 2u);
}

TEST(CrashMatrixTest, FsyncFailureLeavesTmpThatRecoveryIgnores) {
  const std::vector<std::vector<GraphId>> oracle = OracleAnswers();
  const std::string dir = FreshDir("crash_fsync");
  // Kill the SECOND checkpoint's file fsync: each commit fsyncs the file
  // then the parent directory, so kFsync ops run file#1, dir#1, file#2 —
  // the first checkpoint commits, the second leaves a torn tmp behind
  // exactly as a crash would.
  ScriptedFaultInjector fault;
  fault.FailAtKind(FaultInjector::Op::kFsync, 2, Status::IOError("fsync"));
  SeedRun(dir, &fault);
  EXPECT_TRUE(fault.fired());
  const std::vector<std::uint64_t> seqs = ListCheckpointSeqs(dir);
  ASSERT_EQ(seqs.size(), 1u);
  EXPECT_TRUE(
      FileExists(dir + "/" + CheckpointFileName(seqs.front() + 1) + ".tmp"));
  const auto report = RestartAndCheck(dir, oracle);
  EXPECT_TRUE(report.warm);
  EXPECT_EQ(report.rejected, 0u);  // the tmp was never even considered
}

TEST(CrashMatrixTest, DoubleRestartIsStableAndSeqsAdvance) {
  const std::vector<std::vector<GraphId>> oracle = OracleAnswers();
  const std::string dir = FreshDir("crash_double");
  SeedRun(dir, nullptr);
  const std::uint64_t newest_before = ListCheckpointSeqs(dir).front();
  // First restarted process: warm, then cuts its own checkpoint — the
  // seq must continue above the on-disk horizon, not clobber it.
  {
    GraphDataset ds;
    ReplayLineage(ds, kMutationSteps);
    GraphCachePlus gc(&ds, EngineOptions(dir, nullptr, /*epoch=*/false));
    GraphCachePlus::WarmRestartReport report;
    ASSERT_TRUE(gc.WarmRestart(&report).ok());
    EXPECT_TRUE(report.warm);
    EXPECT_EQ(RunQueries(gc), oracle);
    gc.FlushMaintenance();
    ASSERT_TRUE(gc.CheckpointNow().ok());
  }
  EXPECT_GT(ListCheckpointSeqs(dir).front(), newest_before);
  // Second restarted process: warm again from the newer checkpoint.
  const auto report = RestartAndCheck(dir, oracle);
  EXPECT_TRUE(report.warm);
  EXPECT_GT(report.entries, 0u);
}

TEST(CrashMatrixTest, PostRestoreReconcileBalancesTouchedPlusSkipped) {
  const std::string dir = FreshDir("crash_balance");
  SeedRun(dir, nullptr);
  GraphDataset ds;
  ReplayLineage(ds, kMutationSteps);
  GraphCachePlusOptions opts = EngineOptions(dir, nullptr, /*epoch=*/false);
  // No admissions after restart: the resident population stays exactly
  // the restored entries, so the first reconcile's accounting is pinned.
  opts.enable_admission = false;
  GraphCachePlus gc(&ds, opts);
  GraphCachePlus::WarmRestartReport report;
  ASSERT_TRUE(gc.WarmRestart(&report).ok());
  ASSERT_TRUE(report.warm);
  ASSERT_GT(report.entries, 0u);
  // The checkpoint may carry more entries than the capacity-capped
  // restore admits; the resident population is what restore reported.
  const StatisticsManager before = gc.CacheStatsSnapshot();
  const std::uint64_t resident = before.restored_entries;
  ASSERT_GT(resident, 0u);
  EXPECT_LE(resident, report.entries);
  // One change batch + one query forces the first post-restore reconcile
  // across every shard; its touched/skipped tallies must account for the
  // full restored population (the first-drain balance assert fires
  // inside the stores under sanitizer builds).
  ds.AddGraph(MakeSingleton(1));
  (void)gc.SubgraphQuery(MakePath({0, 1}));
  const StatisticsManager after = gc.CacheStatsSnapshot();
  const std::uint64_t touched =
      after.reconcile_entries_touched - before.reconcile_entries_touched;
  const std::uint64_t skipped =
      after.reconcile_entries_skipped - before.reconcile_entries_skipped;
  EXPECT_EQ(touched + skipped, resident);
}

TEST(CrashMatrixTest, WarmRestartUnderByteBudgetKeepsWhatFits) {
  const std::vector<std::vector<GraphId>> oracle = OracleAnswers();
  const std::string dir = FreshDir("crash_byte_budget");
  SeedRun(dir, nullptr);  // the donor cut its checkpoints with no budget

  // Measure the unconstrained restore so the budgeted run below is
  // guaranteed to be over budget regardless of entry sizes.
  std::uint64_t full_bytes = 0;
  std::uint64_t full_resident = 0;
  {
    GraphDataset ds;
    ReplayLineage(ds, kMutationSteps);
    GraphCachePlus gc(&ds, EngineOptions(dir, nullptr, /*epoch=*/false));
    ASSERT_TRUE(gc.WarmRestart(nullptr).ok());
    for (std::size_t s = 0; s < gc.cache_shards().num_shards(); ++s) {
      full_bytes += gc.cache_shards().shard(s).approx_entry_bytes();
    }
    full_resident = gc.CacheStatsSnapshot().restored_entries;
    ASSERT_GT(full_resident, 1u);
    ASSERT_GT(full_bytes, 0u);
  }

  GraphDataset ds;
  ReplayLineage(ds, kMutationSteps);
  GraphCachePlusOptions opts = EngineOptions(dir, nullptr, /*epoch=*/false);
  // Half the measured footprint: the summed per-shard slices are below
  // what the full restore holds, so at least one shard must drop.
  opts.byte_budget = full_bytes / 2;
  // No admissions after restart: the resident population stays exactly
  // the restored survivors, pinning the first-drain balance below.
  opts.enable_admission = false;
  GraphCachePlus gc(&ds, opts);
  GraphCachePlus::WarmRestartReport report;
  ASSERT_TRUE(gc.WarmRestart(&report).ok());
  ASSERT_TRUE(report.warm);

  const StatisticsManager before = gc.CacheStatsSnapshot();
  EXPECT_GT(before.restore_budget_dropped, 0u);
  const std::uint64_t resident = before.restored_entries;
  EXPECT_GT(resident, 0u);
  EXPECT_LT(resident, full_resident);
  // Survivors respect the per-shard slice, and the incremental gauge the
  // restore rebuilt matches a from-scratch recompute of the footprints.
  for (std::size_t s = 0; s < gc.cache_shards().num_shards(); ++s) {
    const CacheManager& shard = gc.cache_shards().shard(s);
    EXPECT_LE(shard.approx_entry_bytes(), shard.entry_byte_budget());
    std::uint64_t recomputed = 0;
    shard.ForEachEntry([&recomputed](const CachedQuery& e) {
      EXPECT_EQ(e.approx_bytes, ApproxEntryBytes(e));
      recomputed += ApproxEntryBytes(e);
    });
    EXPECT_EQ(shard.approx_entry_bytes(), recomputed);
  }
  // A budget-trimmed warm cache still answers bit-exactly.
  EXPECT_EQ(RunQueries(gc), oracle);
  gc.FlushMaintenance();
  // First post-restore reconcile accounts for the full trimmed
  // population: touched + skipped == resident.
  const StatisticsManager pre_drain = gc.CacheStatsSnapshot();
  ds.AddGraph(MakeSingleton(1));
  (void)gc.SubgraphQuery(MakePath({0, 1}));
  const StatisticsManager after = gc.CacheStatsSnapshot();
  const std::uint64_t touched =
      after.reconcile_entries_touched - pre_drain.reconcile_entries_touched;
  const std::uint64_t skipped =
      after.reconcile_entries_skipped - pre_drain.reconcile_entries_skipped;
  EXPECT_EQ(touched + skipped, resident);
}

TEST(CrashMatrixTest, EpochModeWarmRestartNeverTakesEngineLockOnReads) {
  const std::vector<std::vector<GraphId>> oracle = OracleAnswers();
  const std::string dir = FreshDir("crash_epoch");
  SeedRun(dir, nullptr);
  const auto report = RestartAndCheck(dir, oracle, /*epoch=*/true);
  EXPECT_TRUE(report.warm);
  // Re-run to inspect counters on a live engine.
  GraphDataset ds;
  ReplayLineage(ds, kMutationSteps);
  GraphCachePlus gc(&ds, EngineOptions(dir, nullptr, /*epoch=*/true));
  ASSERT_TRUE(gc.WarmRestart(nullptr).ok());
  RunQueries(gc);
  gc.FlushMaintenance();
  ASSERT_TRUE(gc.CheckpointNow().ok());
  RunQueries(gc);
  EXPECT_EQ(gc.read_phase_engine_lock_acquisitions(), 0u);
  const StatisticsManager stats = gc.CacheStatsSnapshot();
  EXPECT_GE(stats.warm_restarts, 1u);
  EXPECT_GE(stats.checkpoints_written, 1u);
}

}  // namespace
}  // namespace gcp
