#include "core/graphcache_plus.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "../test_util.hpp"
#include "graph/generators.hpp"

namespace gcp {
namespace {

using testing::MakeCycle;
using testing::MakePath;
using testing::MakeSingleton;

std::vector<Graph> SmallMolecules() {
  // A tiny, hand-readable dataset over labels {0 (C), 1 (O), 2 (N)}.
  std::vector<Graph> ds;
  ds.push_back(MakePath({0, 0, 1}));        // 0: C-C-O
  ds.push_back(MakePath({0, 1}));           // 1: C-O
  ds.push_back(MakeCycle({0, 0, 0}));       // 2: C-ring
  ds.push_back(MakePath({2, 0, 1}));        // 3: N-C-O
  ds.push_back(MakeSingleton(2));           // 4: lone N
  return ds;
}

GraphCachePlusOptions DefaultOptions(CacheModel model = CacheModel::kCon) {
  GraphCachePlusOptions opts;
  opts.model = model;
  return opts;
}

TEST(GraphCachePlusTest, ColdCacheAnswersCorrectly) {
  GraphDataset ds;
  ds.Bootstrap(SmallMolecules());
  // This test pins the bare Method M path: every FTV candidate verified.
  // The fragment tier would prune candidates even cold (its gates live in
  // fragment_equivalence_test), so it is the oracle config here.
  GraphCachePlusOptions opts = DefaultOptions();
  opts.use_fragment_cache = false;
  GraphCachePlus gc(&ds, opts);
  const QueryResult r = gc.SubgraphQuery(MakePath({0, 1}));
  EXPECT_EQ(r.answer, (std::vector<GraphId>{0, 1, 3}));
  EXPECT_EQ(r.metrics.si_tests, 5u);
  EXPECT_EQ(r.metrics.candidates_initial, 5u);
}

TEST(GraphCachePlusTest, RepeatedQueryIsExactHitWithZeroTests) {
  GraphDataset ds;
  ds.Bootstrap(SmallMolecules());
  GraphCachePlus gc(&ds, DefaultOptions());
  const QueryResult r1 = gc.SubgraphQuery(MakePath({0, 1}));
  const QueryResult r2 = gc.SubgraphQuery(MakePath({0, 1}));
  EXPECT_EQ(r1.answer, r2.answer);
  EXPECT_TRUE(r2.metrics.exact_hit);
  EXPECT_EQ(r2.metrics.si_tests, 0u);
  // Exact hits are not re-admitted: still one resident entry.
  EXPECT_EQ(gc.cache_manager().resident(), 1u);
  EXPECT_EQ(gc.aggregate().exact_hits, 1u);
  EXPECT_EQ(gc.aggregate().exact_hits_zero_test, 1u);
}

TEST(GraphCachePlusTest, SubgraphHitPrunesAndPreservesAnswers) {
  GraphDataset ds;
  ds.Bootstrap(SmallMolecules());
  GraphCachePlus gc(&ds, DefaultOptions());
  gc.SubgraphQuery(MakePath({2, 0, 1}));  // N-C-O: answer {3}
  const QueryResult r = gc.SubgraphQuery(MakePath({2, 0}));  // N-C ⊆ N-C-O
  EXPECT_EQ(r.answer, (std::vector<GraphId>{3}));
  EXPECT_GE(r.metrics.sub_hits, 1u);
  EXPECT_GE(r.metrics.tests_saved_sub, 1u);
  EXPECT_LT(r.metrics.si_tests, 5u);
}

TEST(GraphCachePlusTest, SupergraphHitPrunesNegatives) {
  GraphDataset ds;
  ds.Bootstrap(SmallMolecules());
  GraphCachePlus gc(&ds, DefaultOptions());
  // Cache a small query first: C-O has answer {0,1,3}; negatives {2,4}.
  gc.SubgraphQuery(MakePath({0, 1}));
  // Now a supergraph of it: C-C-O. Graphs 2 and 4 (valid negatives of the
  // cached subgraph) are pruned from its candidate set by formula (5).
  const QueryResult r = gc.SubgraphQuery(MakePath({0, 0, 1}));
  EXPECT_EQ(r.answer, (std::vector<GraphId>{0}));
  EXPECT_GE(r.metrics.super_hits, 1u);
  EXPECT_GE(r.metrics.tests_saved_super, 2u);
  EXPECT_LE(r.metrics.si_tests, 3u);
}

TEST(GraphCachePlusTest, EmptyAnswerShortcut) {
  GraphDataset ds;
  ds.Bootstrap(SmallMolecules());
  GraphCachePlus gc(&ds, DefaultOptions());
  gc.SubgraphQuery(MakePath({1, 1}));  // O-O: no graph has it → empty
  // Any supergraph of O-O is provably empty too.
  const QueryResult r = gc.SubgraphQuery(MakePath({1, 1, 0}));
  EXPECT_TRUE(r.answer.empty());
  EXPECT_TRUE(r.metrics.empty_shortcut);
  EXPECT_EQ(r.metrics.si_tests, 0u);
}

TEST(GraphCachePlusTest, SupergraphQueryAnswersContainedGraphs) {
  GraphDataset ds;
  ds.Bootstrap(SmallMolecules());
  GraphCachePlus gc(&ds, DefaultOptions());
  // Supergraph query g = C-C-O-N star-ish path: graphs contained in it.
  const Graph g = MakePath({2, 0, 0, 1});  // N-C-C-O
  const QueryResult r = gc.SupergraphQuery(g);
  // Contained: G1 (C-O ⊆ N-C-C-O), G4 (lone N). Not G0 (C-C-O: needs C-C
  // and C-O adjacent — present: vertices 1,2,3 = C,C,O ✓ so G0 included).
  EXPECT_EQ(r.answer, (std::vector<GraphId>{0, 1, 4}));
}

TEST(GraphCachePlusTest, SupergraphQueryUsesCache) {
  GraphDataset ds;
  ds.Bootstrap(SmallMolecules());
  GraphCachePlus gc(&ds, DefaultOptions());
  const Graph small = MakePath({2, 0});     // N-C
  const Graph big = MakePath({2, 0, 0, 1});  // N-C-C-O contains N-C
  const QueryResult r1 = gc.SupergraphQuery(small);
  const QueryResult r2 = gc.SupergraphQuery(big);
  // Positive transfer: everything contained in `small` is contained in
  // `big` (answers of the cached supergraph query inject directly).
  for (const GraphId id : r1.answer) {
    EXPECT_NE(std::find(r2.answer.begin(), r2.answer.end(), id),
              r2.answer.end());
  }
  EXPECT_GE(r2.metrics.super_hits + r2.metrics.sub_hits, 1u);
}

TEST(GraphCachePlusTest, MixedKindsDoNotCrossContaminate) {
  GraphDataset ds;
  ds.Bootstrap(SmallMolecules());
  GraphCachePlus gc(&ds, DefaultOptions());
  const Graph q = MakePath({0, 1});
  const QueryResult sub = gc.SubgraphQuery(q);
  const QueryResult super = gc.SupergraphQuery(q);
  // Same graph, different semantics; the second must not be an exact hit
  // on the first's entry.
  EXPECT_FALSE(super.metrics.exact_hit);
  EXPECT_EQ(sub.answer, (std::vector<GraphId>{0, 1, 3}));
  EXPECT_EQ(super.answer, (std::vector<GraphId>{1}));
}

TEST(GraphCachePlusTest, EviPurgesConRetains) {
  auto run = [&](CacheModel model) {
    GraphDataset ds;
    ds.Bootstrap(SmallMolecules());
    // Fragment-free: the asserted si_tests counts are the whole-query
    // CON-fade / EVI-purge story, not fragment pruning.
    GraphCachePlusOptions opts = DefaultOptions(model);
    opts.use_fragment_cache = false;
    GraphCachePlus gc(&ds, opts);
    gc.SubgraphQuery(MakePath({0, 1}));
    // UR on graph 0 (a positive result of the cached query): CON must fade
    // exactly that bit; EVI throws the whole cache away.
    ds.RemoveEdge(0, 0, 1).ok();
    const QueryResult r = gc.SubgraphQuery(MakePath({0, 1}));
    EXPECT_EQ(r.answer, (std::vector<GraphId>{0, 1, 3}));  // C-O edge remains
    return std::make_pair(r.metrics.exact_hit, r.metrics.si_tests);
  };
  const auto [evi_exact, evi_tests] = run(CacheModel::kEvi);
  const auto [con_exact, con_tests] = run(CacheModel::kCon);
  EXPECT_FALSE(evi_exact);  // cache was purged
  EXPECT_EQ(evi_tests, 5u);
  EXPECT_FALSE(con_exact);  // validity on graph 0 was faded (UR, positive)
  EXPECT_EQ(con_tests, 1u); // but only graph 0 needs re-verification
}

TEST(GraphCachePlusTest, ConExactHitSurvivesBenignChange) {
  GraphDataset ds;
  ds.Bootstrap(SmallMolecules());
  GraphCachePlus gc(&ds, DefaultOptions(CacheModel::kCon));
  const QueryResult r1 = gc.SubgraphQuery(MakePath({0, 1}));
  ASSERT_EQ(r1.answer, (std::vector<GraphId>{0, 1, 3}));
  // UA on graph 0 — a positive result; UA-exclusive keeps it valid.
  // Graph 0 is C-C-O (path), add edge closing the triangle.
  ds.AddEdge(0, 0, 2).ok();
  const QueryResult r2 = gc.SubgraphQuery(MakePath({0, 1}));
  EXPECT_TRUE(r2.metrics.exact_hit);
  EXPECT_EQ(r2.metrics.si_tests, 0u);
  EXPECT_EQ(r2.answer, r1.answer);
}

TEST(GraphCachePlusTest, AnswersStayCorrectAcrossDeletion) {
  GraphDataset ds;
  ds.Bootstrap(SmallMolecules());
  GraphCachePlus gc(&ds, DefaultOptions(CacheModel::kCon));
  gc.SubgraphQuery(MakePath({0, 1}));
  ds.DeleteGraph(1).ok();
  const QueryResult r = gc.SubgraphQuery(MakePath({0, 1}));
  EXPECT_EQ(r.answer, (std::vector<GraphId>{0, 3}));  // id 1 gone
}

TEST(GraphCachePlusTest, NewGraphsAreSeenByOldCachedQueries) {
  GraphDataset ds;
  ds.Bootstrap(SmallMolecules());
  GraphCachePlus gc(&ds, DefaultOptions(CacheModel::kCon));
  gc.SubgraphQuery(MakePath({0, 1}));
  const GraphId id = ds.AddGraph(MakePath({0, 1, 1}));  // contains C-O
  const QueryResult r = gc.SubgraphQuery(MakePath({0, 1}));
  EXPECT_NE(std::find(r.answer.begin(), r.answer.end(), id), r.answer.end());
  // The new graph required an actual test (cached entry has no knowledge).
  EXPECT_GE(r.metrics.si_tests, 1u);
}

TEST(GraphCachePlusTest, AdmissionDisabledKeepsCacheEmpty) {
  GraphDataset ds;
  ds.Bootstrap(SmallMolecules());
  GraphCachePlusOptions opts = DefaultOptions();
  opts.enable_admission = false;
  GraphCachePlus gc(&ds, opts);
  gc.SubgraphQuery(MakePath({0, 1}));
  gc.SubgraphQuery(MakePath({0, 1}));
  EXPECT_EQ(gc.cache_manager().resident(), 0u);
  EXPECT_EQ(gc.aggregate().exact_hits, 0u);
  EXPECT_EQ(gc.aggregate().si_tests, 10u);
}

TEST(GraphCachePlusTest, RetrospectiveRefreshRestoresExactHit) {
  GraphDataset ds;
  ds.Bootstrap(SmallMolecules());
  GraphCachePlusOptions opts = DefaultOptions(CacheModel::kCon);
  opts.retrospective_budget = 100;
  GraphCachePlus gc(&ds, opts);
  const QueryResult r1 = gc.SubgraphQuery(MakePath({0, 1}));
  ASSERT_EQ(r1.answer, (std::vector<GraphId>{0, 1, 3}));
  // UR breaks the containment in graph 1 (its only edge is C-O).
  ASSERT_TRUE(ds.RemoveEdge(1, 0, 1).ok());
  const QueryResult r2 = gc.SubgraphQuery(MakePath({0, 1}));
  // Retrospective refresh re-tested graph 1 off the critical path, so the
  // repeated query is an exact hit with zero query-time tests — and the
  // refreshed answer reflects the broken containment.
  EXPECT_TRUE(r2.metrics.exact_hit);
  EXPECT_EQ(r2.metrics.si_tests, 0u);
  EXPECT_EQ(r2.answer, (std::vector<GraphId>{0, 3}));
  EXPECT_GT(gc.cache_manager().stats().total_retro_refreshes, 0u);
}

TEST(GraphCachePlusTest, RetrospectiveRefreshCoversNewGraphs) {
  GraphDataset ds;
  ds.Bootstrap(SmallMolecules());
  GraphCachePlusOptions opts = DefaultOptions(CacheModel::kCon);
  opts.retrospective_budget = 100;
  GraphCachePlus gc(&ds, opts);
  gc.SubgraphQuery(MakePath({0, 1}));
  const GraphId id = ds.AddGraph(MakePath({1, 0, 1}));  // contains C-O
  const QueryResult r = gc.SubgraphQuery(MakePath({0, 1}));
  // The new graph was pre-verified during sync: exact hit, zero tests,
  // and the new graph appears in the answer.
  EXPECT_TRUE(r.metrics.exact_hit);
  EXPECT_EQ(r.metrics.si_tests, 0u);
  EXPECT_NE(std::find(r.answer.begin(), r.answer.end(), id), r.answer.end());
}

TEST(GraphCachePlusTest, RetrospectiveBudgetIsBounded) {
  GraphDataset ds;
  ds.Bootstrap(SmallMolecules());
  GraphCachePlusOptions opts = DefaultOptions(CacheModel::kCon);
  opts.retrospective_budget = 1;  // only one re-test per sync allowed
  GraphCachePlus gc(&ds, opts);
  gc.SubgraphQuery(MakePath({0, 1}));
  ds.AddGraph(MakePath({1, 0, 1}));
  ds.AddGraph(MakePath({0, 0, 0, 1}));
  gc.SubgraphQuery(MakePath({0, 1}));
  EXPECT_EQ(gc.cache_manager().stats().total_retro_refreshes, 1u);
}

TEST(GraphCachePlusTest, ParallelVerificationMatchesSerial) {
  Rng rng(55);
  std::vector<Graph> graphs;
  for (int i = 0; i < 60; ++i) {
    graphs.push_back(RandomConnectedGraph(rng, 12, 4, 3));
  }
  const Graph q = MakePath({0, 1, 2});
  GraphDataset ds1, ds2;
  ds1.Bootstrap(graphs);
  ds2.Bootstrap(graphs);
  GraphCachePlusOptions serial = DefaultOptions();
  GraphCachePlusOptions parallel = DefaultOptions();
  parallel.verify_threads = 4;
  GraphCachePlus gc1(&ds1, serial), gc2(&ds2, parallel);
  EXPECT_EQ(gc1.SubgraphQuery(q).answer, gc2.SubgraphQuery(q).answer);
}

TEST(GraphCachePlusTest, MetricsBreakdownSumsToQueryTime) {
  GraphDataset ds;
  ds.Bootstrap(SmallMolecules());
  GraphCachePlus gc(&ds, DefaultOptions());
  const QueryResult r = gc.SubgraphQuery(MakePath({0, 1}));
  const auto& m = r.metrics;
  EXPECT_EQ(m.QueryTimeNs(), m.t_validate_ns + m.t_probe_ns + m.t_prune_ns +
                                 m.t_fragment_ns + m.t_verify_ns);
  EXPECT_GE(m.OverheadNs(), 0);
  EXPECT_EQ(m.answer_size, r.answer.size());
}

}  // namespace
}  // namespace gcp
