// Fragment-cache equivalence gate (PR 9):
//
// The fragment tier is pruning-only: over a 300-step churn of
// interleaved queries and dataset changes, an engine with the sub-pattern
// fragment cache ON must replay the fragment-free engine bit-exactly —
// same answers every step (both checked against an uncached Method M
// ground truth), same resident whole-query population with identical
// CGvalid/answer indicators, same admission/dedup/eviction/hit counters —
// across {CON, EVI} × {lock, epoch} × shards {1, 8}. The fragment
// counters ride along to prove the tier actually engaged: fragments were
// admitted, probed, intersected, and (CON) reconciled or (EVI) purged.

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <string>
#include <vector>

#include "core/graphcache_plus.hpp"
#include "dataset/aids_like.hpp"
#include "workload/type_a.hpp"

namespace gcp {
namespace {

std::vector<Graph> ChurnCorpus(std::uint64_t seed) {
  AidsLikeOptions opts;
  opts.num_graphs = 120;
  opts.mean_vertices = 9.0;
  opts.stddev_vertices = 3.0;
  opts.min_vertices = 4;
  opts.max_vertices = 14;
  opts.num_labels = 8;  // dense label space → shared one-hop stars
  opts.seed = seed;
  return AidsLikeGenerator(opts).Generate();
}

struct EngineUnderTest {
  std::unique_ptr<GraphDataset> ds;
  std::unique_ptr<GraphCachePlus> gc;
};

EngineUnderTest MakeEngine(const std::vector<Graph>& corpus, CacheModel model,
                           bool epoch, std::size_t shards, bool fragments,
                           bool admission) {
  EngineUnderTest e;
  e.ds = std::make_unique<GraphDataset>();
  e.ds->Bootstrap(corpus);
  GraphCachePlusOptions opts;
  opts.model = model;
  opts.cache_capacity = 16;
  opts.window_capacity = 4;
  opts.num_shards = shards;
  opts.epoch_reads = epoch;
  opts.use_ftv_index = true;
  opts.use_fragment_cache = fragments;
  // Small enough that the churn exercises fragment LRU eviction too.
  opts.fragment_capacity = 24;
  if (!admission) {
    opts.enable_admission = false;
    opts.enable_exact_shortcut = false;
    opts.enable_empty_answer_shortcut = false;
  }
  e.gc = std::make_unique<GraphCachePlus>(e.ds.get(), opts);
  return e;
}

/// Same shape as the reconciliation suite's churn: grow the id range,
/// aim edge ops at recent ids, trickle deletions of old ids.
void ApplyChurnChanges(GraphDataset& ds, const std::vector<Graph>& corpus,
                       std::size_t step) {
  ds.AddGraph(corpus[(5 * step + 2) % corpus.size()]);
  const std::vector<GraphId> live = ds.LiveIds();
  std::size_t mutated = 0;
  for (std::size_t i = live.size(); i-- > 0 && mutated < 3;) {
    const GraphId id = live[i];
    const Graph& g = ds.graph(id);
    if (g.NumVertices() >= 2 && g.HasEdge(0, 1)) {
      ASSERT_TRUE(ds.RemoveEdge(id, 0, 1).ok());
      if ((step + mutated) % 2 == 0) {
        ASSERT_TRUE(ds.AddEdge(id, 0, 1).ok());
      }
      ++mutated;
    }
  }
  if (step % 3 == 0) {
    const GraphId victim = live[(13 * step + 7) % (live.size() / 2 + 1)];
    ASSERT_TRUE(ds.DeleteGraph(victim).ok());
  }
}

std::string BitsetString(const DynamicBitset& bits) {
  std::string s(bits.size(), '0');
  for (std::size_t i = 0; i < bits.size(); ++i) {
    if (bits.Test(i)) s[i] = '1';
  }
  return s;
}

/// Sorted (digest, kind, CGvalid, answer) tuples over every resident
/// whole-query entry. The fragment stores are deliberately NOT part of
/// this digest: equality means the fragment tier left the whole-query
/// cache — contents, validity knowledge and replacement decisions —
/// untouched.
std::vector<std::string> ResidentState(const GraphCachePlus& gc) {
  std::vector<std::string> out;
  gc.cache_shards().ForEachEntry([&out](const CachedQuery& e) {
    out.push_back(std::to_string(e.digest) + "|" +
                  (e.kind == CachedQueryKind::kSubgraph ? "sub" : "super") +
                  "|" + BitsetString(e.valid) + "|" + BitsetString(e.answer));
  });
  std::sort(out.begin(), out.end());
  return out;
}

void RunFragmentReplay(CacheModel model, bool epoch, std::size_t shards) {
  constexpr std::size_t kSteps = 300;
  const std::vector<Graph> corpus = ChurnCorpus(2468);
  const Workload w = GenerateTypeAByName(corpus, "ZU", kSteps, /*seed=*/707,
                                         /*zipf_alpha=*/1.2);

  EngineUnderTest on =
      MakeEngine(corpus, model, epoch, shards, /*fragments=*/true,
                 /*admission=*/true);
  EngineUnderTest off =
      MakeEngine(corpus, model, epoch, shards, /*fragments=*/false,
                 /*admission=*/true);
  EngineUnderTest method_m =
      MakeEngine(corpus, model, epoch, shards, /*fragments=*/false,
                 /*admission=*/false);

  AggregateMetrics on_agg;
  AggregateMetrics off_agg;
  for (std::size_t step = 0; step < kSteps; ++step) {
    if (step % 7 == 5) {
      for (EngineUnderTest* e : {&on, &off, &method_m}) {
        e->gc->ApplyDatasetChanges([&corpus, step](GraphDataset& d) {
          ApplyChurnChanges(d, corpus, step);
        });
      }
      continue;
    }
    const QueryKind kind =
        step % 2 == 0 ? QueryKind::kSubgraph : QueryKind::kSupergraph;
    const Graph& q = w.queries[step].query;
    const std::vector<GraphId> truth = method_m.gc->Query(q, kind).answer;
    const QueryResult off_res = off.gc->Query(q, kind);
    EXPECT_EQ(off_res.answer, truth)
        << "fragment-free engine diverged from Method M at step " << step;
    const QueryResult on_res = on.gc->Query(q, kind);
    EXPECT_EQ(on_res.answer, truth)
        << "fragment pruning changed an answer at step " << step;
    off_agg.Add(off_res.metrics);
    on_agg.Add(on_res.metrics);
  }

  // Settle: the churn ends on a mutation batch, which the lock path
  // absorbs lazily at the next query; one more query puts every engine
  // at the same point in the sync cycle.
  const std::vector<GraphId> settle =
      off.gc->Query(w.queries[0].query, QueryKind::kSubgraph).answer;
  EXPECT_EQ(on.gc->Query(w.queries[0].query, QueryKind::kSubgraph).answer,
            settle);

  on.gc->FlushMaintenance();
  off.gc->FlushMaintenance();
  const StatisticsManager ons = on.gc->CacheStatsSnapshot();
  const StatisticsManager offs = off.gc->CacheStatsSnapshot();

  // Identical whole-query residents with identical CGvalid/answer bits...
  EXPECT_EQ(ResidentState(*on.gc), ResidentState(*off.gc));
  // ...reached through identical admission/replacement/hit decisions.
  EXPECT_GT(offs.total_admissions, 0u);
  EXPECT_EQ(ons.total_admissions, offs.total_admissions);
  EXPECT_EQ(ons.total_evictions, offs.total_evictions);
  EXPECT_EQ(ons.total_admission_dedups, offs.total_admission_dedups);
  EXPECT_EQ(ons.total_exact_hits, offs.total_exact_hits);
  EXPECT_EQ(ons.total_sub_hits, offs.total_sub_hits);
  EXPECT_EQ(ons.total_super_hits, offs.total_super_hits);
  EXPECT_EQ(ons.reconcile_entries_touched, offs.reconcile_entries_touched);
  EXPECT_EQ(ons.reconcile_entries_skipped, offs.reconcile_entries_skipped);

  // The tier actually engaged on the fragments side...
  EXPECT_GT(ons.fragment_admissions, 0u);
  EXPECT_GT(on_agg.fragment_computed, 0u);
  EXPECT_GT(on_agg.fragment_intersections, 0u);
  EXPECT_GT(on_agg.fragment_candidates_pruned, 0u);
  EXPECT_GT(ons.approx_fragment_bytes, 0u);
  // ...pruning never inflates verification work...
  EXPECT_LE(on_agg.si_tests, off_agg.si_tests);
  // ...and reconciliation reached the fragment store (CON refreshes it,
  // EVI purges it — either way fragments count as touched).
  EXPECT_GT(ons.fragment_reconcile_touched + ons.fragment_reconcile_skipped,
            0u);
  // ...while the fragment-free side reports zero fragment activity.
  EXPECT_EQ(offs.fragment_admissions, 0u);
  EXPECT_EQ(offs.fragment_hits, 0u);
  EXPECT_EQ(offs.fragment_candidates_pruned, 0u);
  EXPECT_EQ(offs.approx_fragment_bytes, 0u);
}

TEST(FragmentEquivalenceTest, ConLockSingleShard) {
  RunFragmentReplay(CacheModel::kCon, /*epoch=*/false, /*shards=*/1);
}

TEST(FragmentEquivalenceTest, ConLockEightShards) {
  RunFragmentReplay(CacheModel::kCon, /*epoch=*/false, /*shards=*/8);
}

TEST(FragmentEquivalenceTest, ConEpochSingleShard) {
  RunFragmentReplay(CacheModel::kCon, /*epoch=*/true, /*shards=*/1);
}

TEST(FragmentEquivalenceTest, ConEpochEightShards) {
  RunFragmentReplay(CacheModel::kCon, /*epoch=*/true, /*shards=*/8);
}

TEST(FragmentEquivalenceTest, EviLockSingleShard) {
  RunFragmentReplay(CacheModel::kEvi, /*epoch=*/false, /*shards=*/1);
}

TEST(FragmentEquivalenceTest, EviLockEightShards) {
  RunFragmentReplay(CacheModel::kEvi, /*epoch=*/false, /*shards=*/8);
}

TEST(FragmentEquivalenceTest, EviEpochSingleShard) {
  RunFragmentReplay(CacheModel::kEvi, /*epoch=*/true, /*shards=*/1);
}

TEST(FragmentEquivalenceTest, EviEpochEightShards) {
  RunFragmentReplay(CacheModel::kEvi, /*epoch=*/true, /*shards=*/8);
}

}  // namespace
}  // namespace gcp
