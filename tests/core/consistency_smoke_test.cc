// Cache-vs-no-cache differential smoke test (paper §5): GC+ under EVI and
// CON must answer exactly like uncached Method M across interleaved
// query/change/query cycles covering every change class (ADD, DEL, UA, UR).

#include "core/graphcache_plus.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "../test_util.hpp"
#include "graph/generators.hpp"

namespace gcp {
namespace {

using testing::MakePath;
using testing::MakeSingleton;
using testing::MakeStar;
using testing::MakeTriangle;

std::vector<Graph> SeedDataset(Rng& rng) {
  std::vector<Graph> ds;
  for (int i = 0; i < 24; ++i) {
    ds.push_back(RandomConnectedGraph(rng, 10, 5, 3));
  }
  return ds;
}

std::vector<Graph> QueryMix() {
  return {MakePath({0, 1}),      MakePath({1, 2, 0}), MakeTriangle(0, 1, 2),
          MakeStar({0, 1, 2, 1}), MakeSingleton(2),    MakePath({2, 2})};
}

// Applies one logged change of each class to a random live graph.
void MutateDataset(GraphDataset* ds, Rng& rng) {
  const std::vector<GraphId> live = ds->LiveIds();
  ASSERT_GE(live.size(), 3u);

  // UR: drop the first adjacency of some vertex in a random live graph.
  {
    const GraphId id = live[rng.UniformBelow(live.size())];
    const Graph& g = ds->graph(id);
    for (VertexId u = 0; u < g.NumVertices(); ++u) {
      if (!g.neighbors(u).empty()) {
        ASSERT_TRUE(ds->RemoveEdge(id, u, g.neighbors(u)[0]).ok());
        break;
      }
    }
  }
  // UA: connect the first non-adjacent vertex pair of another live graph.
  {
    const GraphId id = live[rng.UniformBelow(live.size())];
    const Graph& g = ds->graph(id);
    bool added = false;
    for (VertexId u = 0; u < g.NumVertices() && !added; ++u) {
      for (VertexId v = u + 1; v < g.NumVertices() && !added; ++v) {
        if (!g.HasEdge(u, v)) {
          ASSERT_TRUE(ds->AddEdge(id, u, v).ok());
          added = true;
        }
      }
    }
  }
  // DEL then ADD: retire one graph, admit a fresh one.
  ASSERT_TRUE(ds->DeleteGraph(live[rng.UniformBelow(live.size())]).ok());
  ds->AddGraph(RandomConnectedGraph(rng, 8, 4, 3));
}

// Drives a cached GC+ instance and a pass-through Method M baseline
// (admission off) over the same dataset through query/change/query cycles
// and requires identical answers throughout.
void RunDifferential(CacheModel model) {
  Rng rng(101);
  GraphDataset ds;
  ds.Bootstrap(SeedDataset(rng));

  GraphCachePlusOptions cached_opts;
  cached_opts.model = model;
  GraphCachePlusOptions uncached_opts;
  uncached_opts.enable_admission = false;  // pure Method M, no cache

  GraphCachePlus cached(&ds, cached_opts);
  GraphCachePlus uncached(&ds, uncached_opts);

  const std::vector<Graph> queries = QueryMix();
  for (int round = 0; round < 4; ++round) {
    for (std::size_t qi = 0; qi < queries.size(); ++qi) {
      EXPECT_EQ(cached.SubgraphQuery(queries[qi]).answer,
                uncached.SubgraphQuery(queries[qi]).answer)
          << CacheModelName(model) << " sub round " << round << " q" << qi;
      EXPECT_EQ(cached.SupergraphQuery(queries[qi]).answer,
                uncached.SupergraphQuery(queries[qi]).answer)
          << CacheModelName(model) << " super round " << round << " q" << qi;
    }
    MutateDataset(&ds, rng);
  }
  // The cache actually participated: some entries were admitted.
  EXPECT_GT(cached.cache_manager().resident(), 0u);
  EXPECT_EQ(uncached.cache_manager().resident(), 0u);
}

TEST(ConsistencySmokeTest, EviMatchesUncachedMethodM) {
  RunDifferential(CacheModel::kEvi);
}

TEST(ConsistencySmokeTest, ConMatchesUncachedMethodM) {
  RunDifferential(CacheModel::kCon);
}

// CON with retrospective refresh enabled must also stay exact — refreshed
// validity bits may not resurrect stale knowledge.
TEST(ConsistencySmokeTest, ConWithRetrospectiveRefreshStaysExact) {
  Rng rng(202);
  GraphDataset ds;
  ds.Bootstrap(SeedDataset(rng));

  GraphCachePlusOptions cached_opts;
  cached_opts.model = CacheModel::kCon;
  cached_opts.retrospective_budget = 64;
  GraphCachePlusOptions uncached_opts;
  uncached_opts.enable_admission = false;

  GraphCachePlus cached(&ds, cached_opts);
  GraphCachePlus uncached(&ds, uncached_opts);

  const std::vector<Graph> queries = QueryMix();
  for (int round = 0; round < 3; ++round) {
    for (const Graph& q : queries) {
      EXPECT_EQ(cached.SubgraphQuery(q).answer, uncached.SubgraphQuery(q).answer);
    }
    MutateDataset(&ds, rng);
  }
}

}  // namespace
}  // namespace gcp
