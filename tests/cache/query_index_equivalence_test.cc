// Equivalence of the inverted feature-signature index with the
// brute-force resident scan: across randomized insert/erase churn the two
// discovery paths must return exactly the same candidate sets for both
// containment directions, and the digest map must track residency.

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <vector>

#include "cache/query_index.hpp"
#include "common/rng.hpp"
#include "graph/canonical.hpp"
#include "graph/generators.hpp"
#include "workload/query_gen.hpp"

namespace gcp {
namespace {

std::unique_ptr<CachedQuery> MakeEntry(CacheEntryId id, Graph q) {
  auto e = std::make_unique<CachedQuery>();
  e->id = id;
  e->features = GraphFeatures::Extract(q);
  e->digest = WlDigest(q);
  e->query = std::make_shared<const Graph>(std::move(q));
  return e;
}

std::vector<CacheEntryId> SortedIds(
    const std::vector<const CachedQuery*>& entries) {
  std::vector<CacheEntryId> ids;
  ids.reserve(entries.size());
  for (const CachedQuery* e : entries) ids.push_back(e->id);
  std::sort(ids.begin(), ids.end());
  return ids;
}

class QueryIndexEquivalenceTest
    : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(QueryIndexEquivalenceTest, IndexedEqualsScanUnderChurn) {
  Rng rng(GetParam());
  QueryIndex index;
  std::vector<std::unique_ptr<CachedQuery>> owned;  // insertion order
  std::vector<std::size_t> resident;                // indices into owned
  CacheEntryId next_id = 1;

  auto random_graph = [&rng]() {
    // Sizes straddle the band boundaries (powers of two) on purpose.
    return RandomConnectedGraph(rng, 2 + rng.UniformBelow(30),
                                rng.UniformBelow(8), 3);
  };

  for (int step = 0; step < 300; ++step) {
    // Churn: mostly inserts early, erase pressure grows with residency.
    const bool do_erase =
        !resident.empty() && rng.UniformBelow(100) < 20 + resident.size();
    if (do_erase) {
      const std::size_t pick = rng.UniformBelow(resident.size());
      index.Erase(owned[resident[pick]]->id);
      resident.erase(resident.begin() + static_cast<long>(pick));
    } else {
      owned.push_back(MakeEntry(next_id++, random_graph()));
      resident.push_back(owned.size() - 1);
      index.Insert(owned.back().get());
    }
    ASSERT_EQ(index.size(), resident.size());

    if (step % 10 != 0) continue;
    // Probe with fresh random graphs and with residents' own features
    // (exact-boundary probes).
    std::vector<GraphFeatures> probes;
    for (int i = 0; i < 4; ++i) {
      probes.push_back(GraphFeatures::Extract(random_graph()));
    }
    if (!resident.empty()) {
      probes.push_back(
          owned[resident[rng.UniformBelow(resident.size())]]->features);
    }
    for (const GraphFeatures& probe : probes) {
      EXPECT_EQ(SortedIds(index.SupergraphCandidates(probe)),
                SortedIds(index.SupergraphCandidatesScan(probe)));
      EXPECT_EQ(SortedIds(index.SubgraphCandidates(probe)),
                SortedIds(index.SubgraphCandidatesScan(probe)));
    }
  }

  // Digest matches reflect exactly the resident population.
  for (const std::size_t i : resident) {
    const auto matches = index.DigestMatches(owned[i]->digest);
    EXPECT_TRUE(std::any_of(
        matches.begin(), matches.end(),
        [&](const CachedQuery* e) { return e->id == owned[i]->id; }));
  }
  index.Clear();
  EXPECT_EQ(index.size(), 0u);
  if (!owned.empty()) {
    EXPECT_TRUE(index.DigestMatches(owned.front()->digest).empty());
    EXPECT_TRUE(
        index.SupergraphCandidates(owned.front()->features).empty());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, QueryIndexEquivalenceTest,
                         ::testing::Values(47001, 47002, 47003));

}  // namespace
}  // namespace gcp
