#include "cache/replacement.hpp"

#include <gtest/gtest.h>

#include "../test_util.hpp"
#include "cache/statistics.hpp"

namespace gcp {
namespace {

CachedQuery MakeScoredEntry(CacheEntryId id, std::uint64_t tests_saved,
                            double cost, std::uint64_t hits,
                            std::uint64_t last_used,
                            std::uint64_t admitted = 0) {
  CachedQuery e;
  e.id = id;
  e.query = std::make_shared<const Graph>(testing::MakePath({0, 1}));
  e.tests_saved = tests_saved;
  e.est_test_cost_ms = cost;
  e.hits = hits;
  e.last_used_at = last_used;
  e.admitted_at = admitted;
  return e;
}

std::vector<const CachedQuery*> Pointers(
    const std::vector<CachedQuery>& entries) {
  std::vector<const CachedQuery*> out;
  for (const auto& e : entries) out.push_back(&e);
  return out;
}

TEST(ReplacementTest, PinRanksByTestsSaved) {
  std::vector<CachedQuery> entries;
  entries.push_back(MakeScoredEntry(1, 5, 1.0, 0, 0));
  entries.push_back(MakeScoredEntry(2, 50, 1.0, 0, 0));
  entries.push_back(MakeScoredEntry(3, 20, 1.0, 0, 0));
  const ReplacementRanker ranker(ReplacementPolicy::kPin, nullptr);
  const auto order = ranker.RankBestFirst(Pointers(entries));
  EXPECT_EQ(order, (std::vector<std::size_t>{1, 2, 0}));
  EXPECT_EQ(ranker.effective_policy(), ReplacementPolicy::kPin);
}

TEST(ReplacementTest, PincWeighsCost) {
  std::vector<CachedQuery> entries;
  entries.push_back(MakeScoredEntry(1, 10, 10.0, 0, 0));  // R*C = 100
  entries.push_back(MakeScoredEntry(2, 50, 1.0, 0, 0));   // R*C = 50
  const ReplacementRanker ranker(ReplacementPolicy::kPinc, nullptr);
  const auto order = ranker.RankBestFirst(Pointers(entries));
  EXPECT_EQ(order[0], 0u);  // higher R×C wins under PINC
  EXPECT_EQ(ranker.effective_policy(), ReplacementPolicy::kPinc);
}

TEST(ReplacementTest, LruRanksByRecency) {
  std::vector<CachedQuery> entries;
  entries.push_back(MakeScoredEntry(1, 0, 0, 0, /*last_used=*/5));
  entries.push_back(MakeScoredEntry(2, 0, 0, 0, /*last_used=*/100));
  entries.push_back(MakeScoredEntry(3, 0, 0, 0, /*last_used=*/50));
  const ReplacementRanker ranker(ReplacementPolicy::kLru, nullptr);
  const auto order = ranker.RankBestFirst(Pointers(entries));
  EXPECT_EQ(order, (std::vector<std::size_t>{1, 2, 0}));
}

TEST(ReplacementTest, LfuRanksByHits) {
  std::vector<CachedQuery> entries;
  entries.push_back(MakeScoredEntry(1, 0, 0, /*hits=*/3, 0));
  entries.push_back(MakeScoredEntry(2, 0, 0, /*hits=*/9, 0));
  const ReplacementRanker ranker(ReplacementPolicy::kLfu, nullptr);
  const auto order = ranker.RankBestFirst(Pointers(entries));
  EXPECT_EQ(order[0], 1u);
}

TEST(ReplacementTest, TieBreakPrefersFresherEntry) {
  std::vector<CachedQuery> entries;
  entries.push_back(MakeScoredEntry(1, 7, 1.0, 0, 0, /*admitted=*/10));
  entries.push_back(MakeScoredEntry(2, 7, 1.0, 0, 0, /*admitted=*/90));
  const ReplacementRanker ranker(ReplacementPolicy::kPin, nullptr);
  const auto order = ranker.RankBestFirst(Pointers(entries));
  EXPECT_EQ(order[0], 1u);  // same R; newer admission ranks first
}

TEST(ReplacementTest, HybridPicksPinUnderHighVariability) {
  // R values with CoV² > 1: heavy spread around a small mean.
  std::vector<CachedQuery> entries;
  entries.push_back(MakeScoredEntry(1, 0, 5.0, 0, 0));
  entries.push_back(MakeScoredEntry(2, 0, 5.0, 0, 0));
  entries.push_back(MakeScoredEntry(3, 0, 5.0, 0, 0));
  entries.push_back(MakeScoredEntry(4, 1000, 0.001, 0, 0));
  const ReplacementRanker ranker(ReplacementPolicy::kHybrid, nullptr);
  const auto order = ranker.RankBestFirst(Pointers(entries));
  EXPECT_EQ(ranker.effective_policy(), ReplacementPolicy::kPin);
  EXPECT_EQ(order[0], 3u);  // PIN ignores the tiny C
}

TEST(ReplacementTest, HybridPicksPincUnderLowVariability) {
  // Nearly equal R values: CoV² ≈ 0 → PINC; cost separates them.
  std::vector<CachedQuery> entries;
  entries.push_back(MakeScoredEntry(1, 10, 0.1, 0, 0));
  entries.push_back(MakeScoredEntry(2, 11, 5.0, 0, 0));
  entries.push_back(MakeScoredEntry(3, 10, 1.0, 0, 0));
  const ReplacementRanker ranker(ReplacementPolicy::kHybrid, nullptr);
  const auto order = ranker.RankBestFirst(Pointers(entries));
  EXPECT_EQ(ranker.effective_policy(), ReplacementPolicy::kPinc);
  EXPECT_EQ(order[0], 1u);  // highest R×C
}

TEST(ReplacementTest, RandomPolicyUsesRng) {
  std::vector<CachedQuery> entries;
  for (CacheEntryId id = 1; id <= 20; ++id) {
    entries.push_back(MakeScoredEntry(id, 0, 0, 0, 0));
  }
  Rng rng1(42), rng2(42), rng3(7);
  const ReplacementRanker r1(ReplacementPolicy::kRandom, &rng1);
  const ReplacementRanker r2(ReplacementPolicy::kRandom, &rng2);
  const ReplacementRanker r3(ReplacementPolicy::kRandom, &rng3);
  const auto o1 = r1.RankBestFirst(Pointers(entries));
  const auto o2 = r2.RankBestFirst(Pointers(entries));
  const auto o3 = r3.RankBestFirst(Pointers(entries));
  EXPECT_EQ(o1, o2);  // deterministic given seed
  EXPECT_NE(o1, o3);  // different seed, different order (w.h.p.)
}

TEST(ReplacementTest, PolicyNames) {
  EXPECT_EQ(ReplacementPolicyName(ReplacementPolicy::kLru), "LRU");
  EXPECT_EQ(ReplacementPolicyName(ReplacementPolicy::kLfu), "LFU");
  EXPECT_EQ(ReplacementPolicyName(ReplacementPolicy::kRandom), "RANDOM");
  EXPECT_EQ(ReplacementPolicyName(ReplacementPolicy::kPin), "PIN");
  EXPECT_EQ(ReplacementPolicyName(ReplacementPolicy::kPinc), "PINC");
  EXPECT_EQ(ReplacementPolicyName(ReplacementPolicy::kHybrid), "HD");
}

TEST(ReplacementTest, EmptyPool) {
  const ReplacementRanker ranker(ReplacementPolicy::kPin, nullptr);
  EXPECT_TRUE(ranker.RankBestFirst({}).empty());
}

}  // namespace
}  // namespace gcp
