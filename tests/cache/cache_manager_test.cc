#include "cache/cache_manager.hpp"

#include <gtest/gtest.h>

#include "../test_util.hpp"
#include "dataset/change_log.hpp"

namespace gcp {
namespace {

using testing::MakePath;

CacheManagerOptions SmallOptions(std::size_t cache, std::size_t window,
                                 ReplacementPolicy policy =
                                     ReplacementPolicy::kPin) {
  CacheManagerOptions opts;
  opts.cache_capacity = cache;
  opts.window_capacity = window;
  opts.policy = policy;
  return opts;
}

CacheEntryId AdmitQuery(CacheManager& cm, Label tag, std::size_t horizon,
                        std::uint64_t now, double cost = 1.0) {
  DynamicBitset answer(horizon);
  DynamicBitset valid(horizon, true);
  return cm.Admit(MakePath({tag, tag}), CachedQueryKind::kSubgraph,
                  std::move(answer), std::move(valid), now, cost)
      .value();
}

TEST(CacheManagerTest, AdmitEntersWindow) {
  CacheManager cm(SmallOptions(4, 3));
  AdmitQuery(cm, 0, 5, 0);
  EXPECT_EQ(cm.window_size(), 1u);
  EXPECT_EQ(cm.cache_size(), 0u);
  EXPECT_EQ(cm.resident(), 1u);
  EXPECT_EQ(cm.index().size(), 1u);
  EXPECT_EQ(cm.stats().total_admissions, 1u);
}

TEST(CacheManagerTest, WindowFullTriggersMerge) {
  CacheManager cm(SmallOptions(4, 3));
  AdmitQuery(cm, 0, 5, 0);
  AdmitQuery(cm, 1, 5, 1);
  EXPECT_EQ(cm.window_size(), 2u);
  AdmitQuery(cm, 2, 5, 2);  // window reaches capacity 3 → merge
  EXPECT_EQ(cm.window_size(), 0u);
  EXPECT_EQ(cm.cache_size(), 3u);
  EXPECT_EQ(cm.resident(), 3u);
}

TEST(CacheManagerTest, MergeEvictsLowestScores) {
  CacheManager cm(SmallOptions(/*cache=*/2, /*window=*/2));
  const CacheEntryId a = AdmitQuery(cm, 0, 5, 0);
  const CacheEntryId b = AdmitQuery(cm, 1, 5, 1);  // merge #1: both fit
  ASSERT_EQ(cm.cache_size(), 2u);
  // Give entry b a benefit so PIN keeps it.
  cm.RecordBenefit(b, 10, 2);
  const CacheEntryId c = AdmitQuery(cm, 2, 5, 3);
  const CacheEntryId d = AdmitQuery(cm, 3, 5, 4);  // merge #2: 4 → keep 2
  EXPECT_EQ(cm.cache_size(), 2u);
  EXPECT_EQ(cm.stats().total_evictions, 2u);
  // b survives (R=10); among {a, c, d} (all R=0) the freshest wins → d.
  EXPECT_NE(cm.FindMutable(b), nullptr);
  EXPECT_NE(cm.FindMutable(d), nullptr);
  EXPECT_EQ(cm.FindMutable(a), nullptr);
  EXPECT_EQ(cm.FindMutable(c), nullptr);
  EXPECT_EQ(cm.index().size(), 2u);
}

TEST(CacheManagerTest, ClearPurgesEverything) {
  CacheManager cm(SmallOptions(4, 2));
  AdmitQuery(cm, 0, 5, 0);
  AdmitQuery(cm, 1, 5, 1);
  AdmitQuery(cm, 2, 5, 2);
  ASSERT_GT(cm.resident(), 0u);
  cm.Clear();
  EXPECT_EQ(cm.resident(), 0u);
  EXPECT_EQ(cm.index().size(), 0u);
  EXPECT_EQ(cm.stats().total_cache_clears, 1u);
  cm.Clear();  // clearing an empty cache is not counted
  EXPECT_EQ(cm.stats().total_cache_clears, 1u);
}

TEST(CacheManagerTest, ValidateAllTouchesCacheAndWindow) {
  CacheManager cm(SmallOptions(4, 3));
  // Two entries with answer bit 0 set; one merged into cache, one in window.
  DynamicBitset answer(2);
  answer.Set(0);
  cm.Admit(MakePath({0, 0}), CachedQueryKind::kSubgraph, answer,
           DynamicBitset(2, true), 0, 1.0);
  cm.MergeWindowIntoCache();
  cm.Admit(MakePath({1, 1}), CachedQueryKind::kSubgraph, answer,
           DynamicBitset(2, true), 1, 1.0);
  ASSERT_EQ(cm.cache_size(), 1u);
  ASSERT_EQ(cm.window_size(), 1u);

  ChangeLog log;
  log.Append(ChangeType::kEdgeRemove, 0);  // invalidates positive results
  cm.ValidateAll(LogAnalyzer::Analyze(log.ExtractSince(0)), 2);
  cm.ForEachEntry([](const CachedQuery& e) {
    EXPECT_FALSE(e.valid.Test(0));
    EXPECT_TRUE(e.valid.Test(1));
  });
}

TEST(CacheManagerTest, ExtendAllAlignsHorizon) {
  CacheManager cm(SmallOptions(4, 3));
  AdmitQuery(cm, 0, 3, 0);
  cm.ExtendAll(8);
  cm.ForEachEntry([](const CachedQuery& e) {
    EXPECT_EQ(e.valid.size(), 8u);
    EXPECT_EQ(e.answer.size(), 8u);
    for (std::size_t i = 3; i < 8; ++i) EXPECT_FALSE(e.valid.Test(i));
  });
}

TEST(CacheManagerTest, RecordBenefitAggregates) {
  CacheManager cm(SmallOptions(4, 3));
  const CacheEntryId id = AdmitQuery(cm, 0, 5, 0);
  cm.RecordBenefit(id, 7, 1);
  cm.RecordBenefit(id, 3, 2);
  const CachedQuery* e = cm.FindMutable(id);
  ASSERT_NE(e, nullptr);
  EXPECT_EQ(e->tests_saved, 10u);
  EXPECT_EQ(e->hits, 2u);
  EXPECT_EQ(cm.stats().total_tests_saved, 10u);
  cm.RecordBenefit(9999, 5, 3);  // unknown id: ignored
  EXPECT_EQ(cm.stats().total_tests_saved, 10u);
}

TEST(CacheManagerTest, InWindowFlagFlipsOnMerge) {
  CacheManager cm(SmallOptions(4, 2));
  const CacheEntryId id = AdmitQuery(cm, 0, 5, 0);
  EXPECT_TRUE(cm.FindMutable(id)->in_window);
  AdmitQuery(cm, 1, 5, 1);  // triggers merge
  EXPECT_FALSE(cm.FindMutable(id)->in_window);
}

TEST(CacheManagerTest, IndexCoversWindowAndCache) {
  CacheManager cm(SmallOptions(4, 2));
  AdmitQuery(cm, 0, 5, 0);
  AdmitQuery(cm, 1, 5, 1);  // merge
  AdmitQuery(cm, 2, 5, 2);  // window
  EXPECT_EQ(cm.index().size(), 3u);
  EXPECT_EQ(cm.cache_size(), 2u);
  EXPECT_EQ(cm.window_size(), 1u);
}

TEST(CacheManagerTest, FindResolvesBothStores) {
  CacheManager cm(SmallOptions(4, 3));
  const CacheEntryId a = AdmitQuery(cm, 0, 5, 0);
  const CacheEntryId b = AdmitQuery(cm, 1, 5, 1);
  const CachedQuery* ea = cm.Find(a);
  ASSERT_NE(ea, nullptr);
  EXPECT_EQ(ea->id, a);
  EXPECT_TRUE(ea->in_window);
  EXPECT_EQ(cm.Find(b), cm.FindMutable(b));
  EXPECT_EQ(cm.Find(999), nullptr);
  EXPECT_EQ(cm.FindMutable(999), nullptr);
}

TEST(CacheManagerTest, IdMapSurvivesMergeAndDropsEvicted) {
  CacheManager cm(SmallOptions(/*cache=*/2, /*window=*/2));
  const CacheEntryId a = AdmitQuery(cm, 0, 5, 0);
  const CacheEntryId b = AdmitQuery(cm, 1, 5, 1);  // merge #1: both fit
  cm.RecordBenefit(b, 10, 2);
  const CacheEntryId c = AdmitQuery(cm, 2, 5, 3);
  cm.RecordBenefit(c, 5, 3);
  const CacheEntryId d = AdmitQuery(cm, 3, 5, 4);  // merge #2: evicts a and d
  EXPECT_EQ(cm.Find(a), nullptr);
  EXPECT_EQ(cm.Find(d), nullptr);
  ASSERT_NE(cm.Find(b), nullptr);
  ASSERT_NE(cm.Find(c), nullptr);
  EXPECT_FALSE(cm.Find(b)->in_window);
}

TEST(CacheManagerTest, IdMapClearedByClearAndRebuiltByRestore) {
  CacheManager cm(SmallOptions(4, 3));
  const CacheEntryId a = AdmitQuery(cm, 0, 5, 0);
  const std::vector<CachedQuery> exported = cm.ExportEntries();
  cm.Clear();
  EXPECT_EQ(cm.Find(a), nullptr);
  cm.RestoreEntries(exported);
  ASSERT_EQ(cm.resident(), 1u);
  // Restore assigns fresh ids; the map must resolve the new id, not the
  // old one.
  const std::vector<CacheEntryId> ids = cm.ResidentIdsByBenefit();
  ASSERT_EQ(ids.size(), 1u);
  EXPECT_NE(cm.Find(ids[0]), nullptr);
  EXPECT_EQ(cm.Find(a), nullptr);
}

TEST(CacheManagerTest, AdmitDeferredSkipsMergeUntilMaybeMergeWindow) {
  CacheManager cm(SmallOptions(/*cache=*/4, /*window=*/2));
  DynamicBitset answer(5);
  DynamicBitset valid(5, true);
  cm.AdmitDeferred(MakePath({0, 0}), CachedQueryKind::kSubgraph, answer, valid,
                   0, 1.0);
  cm.AdmitDeferred(MakePath({1, 1}), CachedQueryKind::kSubgraph, answer, valid,
                   1, 1.0);
  cm.AdmitDeferred(MakePath({2, 2}), CachedQueryKind::kSubgraph, answer, valid,
                   2, 1.0);
  // Three deferred admissions overshoot the window capacity of 2 without
  // triggering replacement...
  EXPECT_EQ(cm.window_size(), 3u);
  EXPECT_EQ(cm.cache_size(), 0u);
  // ...until the once-per-drain merge runs.
  cm.MaybeMergeWindow();
  EXPECT_EQ(cm.window_size(), 0u);
  EXPECT_EQ(cm.cache_size(), 3u);
  // Below capacity the merge is a no-op.
  cm.MaybeMergeWindow();
  EXPECT_EQ(cm.cache_size(), 3u);
}

TEST(CacheManagerTest, CreditHitBumpsKindCounters) {
  CacheManager cm(SmallOptions(4, 4));
  const CacheEntryId a = AdmitQuery(cm, 0, 5, 0);
  cm.CreditHit(a, HitKind::kExact, 3, 1, /*zero_test_exact=*/true);
  cm.CreditHit(a, HitKind::kSub, 2, 2);
  cm.CreditHit(a, HitKind::kSuper, 1, 3);
  cm.CreditHit(a, HitKind::kEmptyProof, 4, 4);
  const CachedQuery* e = cm.Find(a);
  ASSERT_NE(e, nullptr);
  EXPECT_EQ(e->exact_hits, 1u);
  EXPECT_EQ(e->sub_hits, 1u);
  EXPECT_EQ(e->super_hits, 2u);  // kSuper + kEmptyProof
  EXPECT_EQ(e->tests_saved, 10u);
  EXPECT_EQ(e->hits, 4u);
  EXPECT_EQ(cm.stats().total_exact_hits, 1u);
  EXPECT_EQ(cm.stats().total_exact_hits_zero_test, 1u);
  EXPECT_EQ(cm.stats().total_sub_hits, 1u);
  EXPECT_EQ(cm.stats().total_super_hits, 1u);
  EXPECT_EQ(cm.stats().total_empty_shortcuts, 1u);
  EXPECT_EQ(cm.stats().total_tests_saved, 10u);
  // Credits against an evicted id keep the global counters (the hit did
  // happen) but touch no entry.
  cm.CreditHit(999, HitKind::kSub, 7, 5);
  EXPECT_EQ(cm.stats().total_sub_hits, 2u);
  EXPECT_EQ(cm.stats().total_tests_saved, 10u);
}

TEST(CacheManagerTest, HybridPolicyRecordsEffectiveChoice) {
  CacheManager cm(SmallOptions(1, 2, ReplacementPolicy::kHybrid));
  const CacheEntryId a = AdmitQuery(cm, 0, 5, 0, /*cost=*/1.0);
  cm.RecordBenefit(a, 100, 0);
  AdmitQuery(cm, 1, 5, 1, /*cost=*/1.0);  // merge with eviction
  const auto effective = cm.last_effective_policy();
  EXPECT_TRUE(effective == ReplacementPolicy::kPin ||
              effective == ReplacementPolicy::kPinc);
}

}  // namespace
}  // namespace gcp
