// Byte-accounted capacity model (PR 10): incremental footprint gauges vs
// from-scratch recomputes under churn, the per-shard ceil split, the
// fragment carve-out, utility-per-byte eviction for whole-query entries
// and fragments, budget-aware restore, and the allocation-fault admission
// paths.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "../test_util.hpp"
#include "cache/cache_manager.hpp"
#include "cache/fragment_store.hpp"
#include "cache/sharded_cache.hpp"
#include "common/alloc_fault.hpp"
#include "match/fragments.hpp"

namespace gcp {
namespace {

using testing::MakePath;

CacheManagerOptions BudgetOptions(std::size_t cache, std::size_t window,
                                  std::size_t byte_budget,
                                  std::size_t fragment_capacity = 0) {
  CacheManagerOptions opts;
  opts.cache_capacity = cache;
  opts.window_capacity = window;
  opts.policy = ReplacementPolicy::kPin;
  opts.byte_budget = byte_budget;
  opts.fragment_capacity = fragment_capacity;
  return opts;
}

/// Path query of `len` vertices — footprint grows with `len`, so mixing
/// lengths gives entries with meaningfully different byte costs.
CacheEntryId AdmitSized(CacheManager& cm, Label tag, std::size_t len,
                        std::size_t horizon, std::uint64_t now) {
  std::vector<Label> labels(len);
  for (std::size_t i = 0; i < len; ++i) {
    labels[i] = static_cast<Label>(tag + i);
  }
  DynamicBitset answer(horizon);
  DynamicBitset valid(horizon, true);
  Result<CacheEntryId> id =
      cm.AdmitDeferred(MakePath(std::move(labels)), CachedQueryKind::kSubgraph,
                       std::move(answer), std::move(valid), now, 1.0);
  EXPECT_TRUE(id.ok());
  return id.value_or(0);
}

std::uint64_t RecomputeEntryBytes(const CacheManager& cm) {
  std::uint64_t sum = 0;
  cm.ForEachEntry([&sum](const CachedQuery& e) {
    // The cached per-entry field must itself match a fresh measurement.
    EXPECT_EQ(e.approx_bytes, ApproxEntryBytes(e));
    sum += ApproxEntryBytes(e);
  });
  return sum;
}

TEST(ByteBudgetTest, GaugeTracksAdmitMergeEvictChurn) {
  CacheManager cm(BudgetOptions(/*cache=*/6, /*window=*/3, /*byte_budget=*/0));
  std::uint64_t now = 0;
  for (Label tag = 0; tag < 24; ++tag) {
    AdmitSized(cm, tag, 2 + tag % 5, /*horizon=*/16, now++);
    cm.MaybeMergeWindow();
    EXPECT_EQ(cm.approx_entry_bytes(), RecomputeEntryBytes(cm))
        << "gauge drifted after admission " << tag;
  }
  EXPECT_GT(cm.stats().total_evictions, 0u);
  cm.Clear();
  EXPECT_EQ(cm.approx_entry_bytes(), 0u);
}

TEST(ByteBudgetTest, GaugeFollowsBitsetGrowthOnValidate) {
  CacheManager cm(BudgetOptions(8, 4, 0));
  for (Label tag = 0; tag < 4; ++tag) {
    AdmitSized(cm, tag, 3, /*horizon=*/8, tag);
  }
  const std::uint64_t before = cm.approx_entry_bytes();
  ASSERT_EQ(before, RecomputeEntryBytes(cm));
  // Growing the id horizon reallocates every indicator: 8 → 1000 ids is
  // 1 word → 16 words per bitset, which the gauge must re-measure.
  cm.ExtendAll(/*id_horizon=*/1000);
  EXPECT_GT(cm.approx_entry_bytes(), before);
  EXPECT_EQ(cm.approx_entry_bytes(), RecomputeEntryBytes(cm));
  // ValidateAll on a quiet change set keeps the gauge exact too.
  cm.ValidateAll(ChangeCounters{}, /*id_horizon=*/1200);
  EXPECT_EQ(cm.approx_entry_bytes(), RecomputeEntryBytes(cm));
}

TEST(ByteBudgetTest, ShardSplitMirrorsEntryCapacityCeilSplit) {
  CacheManagerOptions total = BudgetOptions(100, 20, /*byte_budget=*/10'001);
  total.fragment_capacity = 33;
  for (const std::size_t shards : {1u, 3u, 7u, 8u}) {
    const CacheManagerOptions per =
        ShardedCache::SplitOptions(total, shards);
    EXPECT_EQ(per.byte_budget,
              (total.byte_budget + shards - 1) / shards);
    EXPECT_EQ(per.cache_capacity,
              (total.cache_capacity + shards - 1) / shards);
    EXPECT_EQ(per.fragment_capacity,
              (total.fragment_capacity + shards - 1) / shards);
    // Summed per-shard budgets stay within total + (shards - 1) bytes.
    EXPECT_GE(per.byte_budget * shards, total.byte_budget);
    EXPECT_LE(per.byte_budget * shards, total.byte_budget + shards - 1);
  }
  // Budget off splits to off — no shard invents a cap.
  total.byte_budget = 0;
  EXPECT_EQ(ShardedCache::SplitOptions(total, 8).byte_budget, 0u);
}

TEST(ByteBudgetTest, FragmentSliceCarvedOutOnlyWhenFragmentsOn) {
  const CacheManager with_frags(
      BudgetOptions(8, 4, /*byte_budget=*/8000, /*fragment_capacity=*/16));
  EXPECT_EQ(with_frags.fragments().byte_budget(), 1000u);
  EXPECT_EQ(with_frags.entry_byte_budget(), 7000u);

  const CacheManager no_frags(BudgetOptions(8, 4, 8000, 0));
  EXPECT_EQ(no_frags.fragments().byte_budget(), 0u);
  EXPECT_EQ(no_frags.entry_byte_budget(), 8000u);

  const CacheManager off(BudgetOptions(8, 4, 0, 16));
  EXPECT_EQ(off.fragments().byte_budget(), 0u);
  EXPECT_EQ(off.entry_byte_budget(), 0u);
}

TEST(ByteBudgetTest, BudgetEvictsWorstUtilityPerByteFirst) {
  // Entry-count caps never bind (cache 100); only the byte pass evicts.
  CacheManager probe(BudgetOptions(100, 4, 0));
  const CacheEntryId small_id = AdmitSized(probe, 0, 2, 16, 0);
  const std::uint64_t small_bytes =
      ApproxEntryBytes(*probe.Find(small_id));
  // Budget fits the three small high-benefit entries but not the big one.
  const std::size_t budget = static_cast<std::size_t>(small_bytes) * 4;

  CacheManager cm(BudgetOptions(100, 4, budget));
  const CacheEntryId a = AdmitSized(cm, 0, 2, 16, 0);
  const CacheEntryId b = AdmitSized(cm, 10, 2, 16, 1);
  const CacheEntryId c = AdmitSized(cm, 20, 2, 16, 2);
  const CacheEntryId big = AdmitSized(cm, 30, 14, 16, 3);
  ASSERT_GT(ApproxEntryBytes(*cm.Find(big)), small_bytes);
  // The small entries earn benefit; the big one earns none, so its
  // utility-per-byte is the worst on both axes.
  cm.RecordBenefit(a, 50, 4);
  cm.RecordBenefit(b, 50, 5);
  cm.RecordBenefit(c, 50, 6);

  cm.MergeWindowIntoCache();
  EXPECT_EQ(cm.Find(big), nullptr) << "worst utility-per-byte survived";
  EXPECT_NE(cm.Find(a), nullptr);
  EXPECT_NE(cm.Find(b), nullptr);
  EXPECT_NE(cm.Find(c), nullptr);
  EXPECT_LE(cm.approx_entry_bytes(), cm.entry_byte_budget());
  EXPECT_EQ(cm.stats().byte_budget_evictions, 1u);
  EXPECT_EQ(cm.stats().total_evictions, 1u);
  EXPECT_EQ(cm.approx_entry_bytes(), RecomputeEntryBytes(cm));
}

TEST(ByteBudgetTest, NeverBindingBudgetReplaysEntryCountEngineExactly) {
  // RANDOM policy is the sharp oracle: any extra RNG consumption on the
  // budget side would desynchronize eviction picks immediately.
  CacheManagerOptions off_opts = BudgetOptions(4, 2, 0);
  off_opts.policy = ReplacementPolicy::kRandom;
  CacheManagerOptions huge_opts = off_opts;
  huge_opts.byte_budget = std::size_t{1} << 40;
  CacheManager off(off_opts);
  CacheManager huge(huge_opts);

  for (Label tag = 0; tag < 30; ++tag) {
    for (CacheManager* cm : {&off, &huge}) {
      AdmitSized(*cm, tag, 2 + tag % 4, 16, tag);
      cm->MaybeMergeWindow();
    }
  }
  auto digests = [](const CacheManager& cm) {
    std::vector<std::uint64_t> out;
    cm.ForEachEntry([&out](const CachedQuery& e) { out.push_back(e.digest); });
    std::sort(out.begin(), out.end());
    return out;
  };
  EXPECT_GT(off.stats().total_evictions, 0u);
  EXPECT_EQ(digests(off), digests(huge));
  EXPECT_EQ(off.stats().total_evictions, huge.stats().total_evictions);
  EXPECT_EQ(huge.stats().byte_budget_evictions, 0u);
}

TEST(ByteBudgetTest, RestoreUnderBudgetKeepsBestPerByteEntries) {
  // Donor: three small useful entries + one big useless one.
  CacheManager donor(BudgetOptions(100, 8, 0));
  const CacheEntryId a = AdmitSized(donor, 0, 2, 16, 0);
  const CacheEntryId b = AdmitSized(donor, 10, 2, 16, 1);
  const CacheEntryId c = AdmitSized(donor, 20, 2, 16, 2);
  AdmitSized(donor, 30, 14, 16, 3);
  donor.RecordBenefit(a, 40, 4);
  donor.RecordBenefit(b, 40, 5);
  donor.RecordBenefit(c, 40, 6);
  const std::uint64_t small_bytes = ApproxEntryBytes(*donor.Find(a));

  CacheManager restored(
      BudgetOptions(100, 8, static_cast<std::size_t>(small_bytes) * 4));
  restored.RestoreEntries(donor.ExportEntries());
  EXPECT_EQ(restored.resident(), 3u);
  EXPECT_EQ(restored.stats().restore_budget_dropped, 1u);
  EXPECT_LE(restored.approx_entry_bytes(), restored.entry_byte_budget());
  EXPECT_EQ(restored.approx_entry_bytes(), RecomputeEntryBytes(restored));
  // Budget off restores everything, byte-accounted all the same.
  CacheManager plain(BudgetOptions(100, 8, 0));
  plain.RestoreEntries(donor.ExportEntries());
  EXPECT_EQ(plain.resident(), 4u);
  EXPECT_EQ(plain.stats().restore_budget_dropped, 0u);
  EXPECT_EQ(plain.approx_entry_bytes(), RecomputeEntryBytes(plain));
}

std::unique_ptr<CachedQuery> MakeFragment(Label center,
                                          std::vector<Label> leaves,
                                          std::size_t horizon = 64) {
  Graph star = MakeStarGraph(center, std::move(leaves));
  DynamicBitset answer(horizon);
  DynamicBitset valid(horizon, true);
  return CacheManager::PrepareEntry(
      std::make_shared<const Graph>(std::move(star)),
      CachedQueryKind::kSubgraph, std::move(answer), std::move(valid), 1.0);
}

TEST(ByteBudgetTest, FragmentStoreEnforcesByteSlicePerByteRanking) {
  auto probe = MakeFragment(1, {2});
  const std::uint64_t frag_bytes = ApproxEntryBytes(*probe);
  // Room for three small fragments; entry capacity never binds.
  FragmentStore store(/*capacity=*/64, /*maintain_relevance_index=*/true,
                      /*byte_budget=*/frag_bytes * 3 + frag_bytes / 2);
  StatisticsManager stats;
  ASSERT_TRUE(store.AdmitOrMerge(MakeFragment(1, {2}), 1, stats).ok());
  ASSERT_TRUE(store.AdmitOrMerge(MakeFragment(3, {4}), 2, stats).ok());
  ASSERT_TRUE(store.AdmitOrMerge(MakeFragment(5, {6}), 3, stats).ok());
  EXPECT_EQ(stats.fragment_byte_evictions, 0u);
  ASSERT_TRUE(store.AdmitOrMerge(MakeFragment(7, {8}), 4, stats).ok());
  EXPECT_EQ(store.size(), 3u);
  EXPECT_EQ(stats.fragment_byte_evictions, 1u);
  EXPECT_LE(store.approx_entry_bytes(), store.byte_budget());
}

TEST(ByteBudgetTest, AdmissionOomFaultLeavesStoreUntouched) {
  CacheManager cm(BudgetOptions(8, 4, 0));
  ScriptedAllocationFaultInjector injector;
  ScopedAllocationFaultInjector scope(&injector);
  injector.FailSite(AllocSite::kAdmission, true);
  DynamicBitset answer(8);
  DynamicBitset valid(8, true);
  const Result<CacheEntryId> refused =
      cm.Admit(MakePath({1, 2}), CachedQueryKind::kSubgraph, std::move(answer),
               std::move(valid), 0, 1.0);
  EXPECT_FALSE(refused.ok());
  EXPECT_EQ(refused.status().code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(cm.resident(), 0u);
  EXPECT_EQ(cm.approx_entry_bytes(), 0u);
  EXPECT_EQ(cm.stats().alloc_failed_admissions, 1u);
  EXPECT_EQ(cm.stats().total_admissions, 0u);
  injector.DisarmScript();
  EXPECT_TRUE(cm.Admit(MakePath({1, 2}), CachedQueryKind::kSubgraph,
                       DynamicBitset(8), DynamicBitset(8, true), 1, 1.0)
                  .ok());
  EXPECT_EQ(cm.resident(), 1u);
}

TEST(ByteBudgetTest, FragmentOomFaultFailsFreshAdmissionButNotMerge) {
  FragmentStore store(8, true);
  StatisticsManager stats;
  ASSERT_TRUE(store.AdmitOrMerge(MakeFragment(1, {2}), 1, stats).ok());

  ScriptedAllocationFaultInjector injector;
  ScopedAllocationFaultInjector scope(&injector);
  injector.FailSite(AllocSite::kFragmentAdmission, true);
  // Fresh star → the fault refuses the allocation.
  const Status fresh = store.AdmitOrMerge(MakeFragment(3, {4}), 2, stats);
  EXPECT_FALSE(fresh.ok());
  EXPECT_EQ(fresh.code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(store.size(), 1u);
  EXPECT_EQ(stats.alloc_failed_fragments, 1u);
  // Resident twin → merge allocates nothing and cannot fail.
  EXPECT_TRUE(store.AdmitOrMerge(MakeFragment(1, {2}), 3, stats).ok());
  EXPECT_EQ(store.size(), 1u);
}

}  // namespace
}  // namespace gcp
