#include "cache/checkpoint.hpp"

#include <gtest/gtest.h>

#include <string>

#include "../test_util.hpp"
#include "common/io.hpp"

namespace gcp {
namespace {

using testing::MakeCycle;
using testing::MakePath;
using testing::MakeStar;

CacheSnapshot SampleSnapshot() {
  CacheSnapshot s;
  s.watermark = 12;
  s.id_horizon = 6;
  CachedQuery e;
  e.kind = CachedQueryKind::kSubgraph;
  e.query = std::make_shared<const Graph>(MakePath({0, 1, 2}));
  e.answer = DynamicBitset(6);
  e.answer.Set(2);
  e.valid = DynamicBitset(6, true);
  e.tests_saved = 5;
  s.entries.push_back(std::move(e));
  CachedQuery f;
  f.kind = CachedQueryKind::kSupergraph;
  f.query = std::make_shared<const Graph>(MakeCycle({3, 3, 3}));
  f.answer = DynamicBitset(6);
  f.valid = DynamicBitset(6);
  s.entries.push_back(std::move(f));
  return s;
}

CacheSnapshot SampleSnapshotWithFragments() {
  CacheSnapshot s = SampleSnapshot();
  CachedQuery f;
  f.kind = CachedQueryKind::kSubgraph;
  f.query = std::make_shared<const Graph>(MakeStar({0, 1, 1}));
  f.answer = DynamicBitset(6);
  f.answer.Set(1);
  f.valid = DynamicBitset(6, true);
  f.tests_saved = 3;
  s.fragments.push_back(std::move(f));
  return s;
}

std::string FreshDir(const char* name) {
  const std::string dir = ::testing::TempDir() + "/" + name;
  EXPECT_TRUE(EnsureDirectory(dir).ok());
  EXPECT_TRUE(PruneCheckpoints(dir, 0).ok());
  return dir;
}

TEST(CheckpointFormatTest, EncodeDecodeRoundTrip) {
  const CacheSnapshot original = SampleSnapshot();
  const std::string bytes = EncodeCheckpoint(original);
  auto decoded = DecodeCheckpoint(bytes);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  const CacheSnapshot& s = decoded.value();
  EXPECT_EQ(s.watermark, original.watermark);
  EXPECT_EQ(s.id_horizon, original.id_horizon);
  ASSERT_EQ(s.entries.size(), original.entries.size());
  EXPECT_TRUE(s.entries[0].answer.Test(2));
  EXPECT_EQ(s.entries[1].kind, CachedQueryKind::kSupergraph);
}

TEST(CheckpointFormatTest, FragmentsRoundTripInV2) {
  const CacheSnapshot original = SampleSnapshotWithFragments();
  const std::string bytes = EncodeCheckpoint(original);
  auto decoded = DecodeCheckpoint(bytes);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  const CacheSnapshot& s = decoded.value();
  ASSERT_EQ(s.entries.size(), 2u);
  ASSERT_EQ(s.fragments.size(), 1u);
  EXPECT_EQ(*s.fragments[0].query, *original.fragments[0].query);
  EXPECT_EQ(s.fragments[0].answer, original.fragments[0].answer);
  EXPECT_EQ(s.fragments[0].valid, original.fragments[0].valid);
  EXPECT_EQ(s.fragments[0].kind, CachedQueryKind::kSubgraph);
}

TEST(CheckpointFormatTest, V1CheckpointWarmRestartsWithFragmentsCold) {
  // Encoding at version 1 produces authentic old-format bytes: v1
  // envelope, no fragments meta line, v1 snapshot body. Decoding must
  // still succeed — whole-query entries intact, fragment store cold —
  // so checkpoints written before the fragment tier keep warm-restarting.
  const CacheSnapshot original = SampleSnapshotWithFragments();
  const std::string bytes = EncodeCheckpoint(original, /*version=*/1);
  EXPECT_EQ(bytes.find("fragment"), std::string::npos);
  auto decoded = DecodeCheckpoint(bytes);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  const CacheSnapshot& s = decoded.value();
  EXPECT_EQ(s.watermark, original.watermark);
  EXPECT_EQ(s.id_horizon, original.id_horizon);
  ASSERT_EQ(s.entries.size(), 2u);
  EXPECT_TRUE(s.entries[0].answer.Test(2));
  EXPECT_TRUE(s.fragments.empty());
}

TEST(CheckpointFormatTest, EveryTruncationIsRejectedNotUB) {
  // Fragment-bearing v2 bytes: the sweep covers the fragment section too.
  const std::string bytes = EncodeCheckpoint(SampleSnapshotWithFragments());
  // Torn write at every byte k: each prefix must decode to a Corruption
  // (or similar) error — never crash, never a silently-wrong snapshot.
  for (std::size_t k = 0; k < bytes.size(); ++k) {
    auto decoded = DecodeCheckpoint(bytes.substr(0, k));
    EXPECT_FALSE(decoded.ok()) << "prefix of " << k << " bytes decoded";
  }
}

TEST(CheckpointFormatTest, EveryBitFlipIsRejected) {
  const std::string clean = EncodeCheckpoint(SampleSnapshotWithFragments());
  // Flip one bit in every byte — header, meta, body and footer sections
  // are all CRC- or cross-check-covered, so no flip may survive.
  for (std::size_t i = 0; i < clean.size(); ++i) {
    std::string bytes = clean;
    bytes[i] = static_cast<char>(bytes[i] ^ 0x10);
    auto decoded = DecodeCheckpoint(bytes);
    if (decoded.ok()) {
      // The only acceptable survivors would be bit-identical decodes;
      // a flipped byte can never produce one.
      FAIL() << "bit flip at byte " << i << " decoded successfully";
    }
  }
}

TEST(CheckpointFormatTest, TrailingBytesRejected) {
  std::string bytes = EncodeCheckpoint(SampleSnapshot());
  bytes += "junk";
  EXPECT_FALSE(DecodeCheckpoint(bytes).ok());
}

TEST(CheckpointFormatTest, SeqNamesRoundTrip) {
  EXPECT_EQ(CheckpointFileName(7), "checkpoint-000007.gcpchk");
  auto seq = ParseCheckpointSeq("checkpoint-000007.gcpchk");
  ASSERT_TRUE(seq.ok());
  EXPECT_EQ(seq.value(), 7u);
  EXPECT_FALSE(ParseCheckpointSeq("checkpoint-000007.gcpchk.tmp").ok());
  EXPECT_FALSE(ParseCheckpointSeq("checkpoint-.gcpchk").ok());
  EXPECT_FALSE(ParseCheckpointSeq("checkpoint-12x4.gcpchk").ok());
  EXPECT_FALSE(ParseCheckpointSeq("other.gcpchk").ok());
}

TEST(CheckpointFileTest, WriteReadRoundTrip) {
  const std::string dir = FreshDir("chk_roundtrip");
  const std::string path = dir + "/" + CheckpointFileName(1);
  std::uint64_t bytes = 0;
  ASSERT_TRUE(
      WriteCheckpointFile(path, SampleSnapshot(), nullptr, &bytes).ok());
  EXPECT_GT(bytes, 0u);
  auto loaded = ReadCheckpointFile(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded.value().watermark, 12u);
}

TEST(CheckpointFileTest, FailedWriteLeavesNoCommittedFile) {
  const std::string dir = FreshDir("chk_faulted");
  const std::string path = dir + "/" + CheckpointFileName(1);
  ScriptedFaultInjector fault;
  fault.FailAtKind(FaultInjector::Op::kWrite, 0, Status::IOError("EIO"),
                   /*torn_prefix=*/10);
  EXPECT_FALSE(
      WriteCheckpointFile(path, SampleSnapshot(), &fault, nullptr).ok());
  EXPECT_FALSE(FileExists(path));
  EXPECT_TRUE(FileExists(path + ".tmp"));  // crash-shaped leftover
  // Recovery never sees the tmp: it is not a checkpoint name.
  EXPECT_TRUE(ListCheckpointSeqs(dir).empty());
}

TEST(CheckpointFileTest, ListAndPrune) {
  const std::string dir = FreshDir("chk_prune");
  for (const std::uint64_t seq : {3u, 1u, 7u, 5u}) {
    ASSERT_TRUE(WriteCheckpointFile(dir + "/" + CheckpointFileName(seq),
                                    SampleSnapshot(), nullptr, nullptr)
                    .ok());
  }
  const std::vector<std::uint64_t> seqs = ListCheckpointSeqs(dir);
  ASSERT_EQ(seqs.size(), 4u);
  EXPECT_EQ(seqs[0], 7u);  // newest first
  EXPECT_EQ(seqs[3], 1u);
  ASSERT_TRUE(PruneCheckpoints(dir, 2).ok());
  const std::vector<std::uint64_t> kept = ListCheckpointSeqs(dir);
  ASSERT_EQ(kept.size(), 2u);
  EXPECT_EQ(kept[0], 7u);
  EXPECT_EQ(kept[1], 5u);
}

TEST(CheckpointFileTest, PruneRemovesTornTmpSiblings) {
  const std::string dir = FreshDir("chk_prune_tmp");
  ASSERT_TRUE(WriteCheckpointFile(dir + "/" + CheckpointFileName(1),
                                  SampleSnapshot(), nullptr, nullptr)
                  .ok());
  ASSERT_TRUE(WriteCheckpointFile(dir + "/" + CheckpointFileName(2),
                                  SampleSnapshot(), nullptr, nullptr)
                  .ok());
  // A torn tmp next to the pruned sibling goes with it.
  ScriptedFaultInjector fault;
  fault.FailAtKind(FaultInjector::Op::kFsync, 0, Status::IOError("EIO"));
  EXPECT_FALSE(WriteCheckpointFile(dir + "/" + CheckpointFileName(1),
                                   SampleSnapshot(), &fault, nullptr)
                   .ok());
  ASSERT_TRUE(FileExists(dir + "/" + CheckpointFileName(1) + ".tmp"));
  ASSERT_TRUE(PruneCheckpoints(dir, 1).ok());
  EXPECT_FALSE(FileExists(dir + "/" + CheckpointFileName(1)));
  EXPECT_FALSE(FileExists(dir + "/" + CheckpointFileName(1) + ".tmp"));
  EXPECT_TRUE(FileExists(dir + "/" + CheckpointFileName(2)));
}

TEST(CheckpointFileTest, MissingFileIsAnError) {
  const std::string dir = FreshDir("chk_missing");
  EXPECT_FALSE(ReadCheckpointFile(dir + "/" + CheckpointFileName(9)).ok());
}

}  // namespace
}  // namespace gcp
