// FragmentStore — admit/merge/collision/credit/evict/validate/export/
// restore behaviour of the per-shard one-hop sub-pattern cache.

#include "cache/fragment_store.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "cache/cache_manager.hpp"
#include "dataset/log_analyzer.hpp"
#include "graph/canonical.hpp"
#include "match/fragments.hpp"

namespace gcp {
namespace {

constexpr std::size_t kHorizon = 8;

std::unique_ptr<CachedQuery> MakeFragEntry(
    Label center, std::vector<Label> leaves,
    std::vector<std::size_t> answer_ids, std::vector<std::size_t> valid_ids,
    std::size_t horizon = kHorizon) {
  Graph star = MakeStarGraph(center, std::move(leaves));
  DynamicBitset answer(horizon);
  DynamicBitset valid(horizon);
  for (const std::size_t i : answer_ids) answer.Set(i);
  for (const std::size_t i : valid_ids) valid.Set(i);
  return CacheManager::PrepareEntry(
      std::make_shared<const Graph>(std::move(star)),
      CachedQueryKind::kSubgraph, std::move(answer), std::move(valid), 1.0);
}

TEST(FragmentStoreTest, ProbeFindsAdmittedStarAndRejectsMismatch) {
  FragmentStore store(8, /*maintain_relevance_index=*/true);
  StatisticsManager stats;
  auto entry = MakeFragEntry(1, {2, 3}, {0, 2}, {0, 1, 2});
  const std::uint64_t digest = entry->digest;
  const Graph star = *entry->query;
  store.AdmitOrMerge(std::move(entry), /*now=*/1, stats);
  EXPECT_EQ(stats.fragment_admissions, 1u);
  EXPECT_EQ(store.size(), 1u);

  const CachedQuery* hit = store.Probe(digest, star);
  ASSERT_NE(hit, nullptr);
  EXPECT_TRUE(hit->answer.Test(0));
  EXPECT_FALSE(hit->answer.Test(1));
  EXPECT_EQ(store.Probe(digest + 1, star), nullptr);
  // Same digest, different star: the equality check refuses the alias.
  const Graph other = MakeStarGraph(9, {9});
  EXPECT_EQ(store.Probe(digest, other), nullptr);
}

TEST(FragmentStoreTest, MergeUnionsValidAndOverwritesCoveredAnswers) {
  FragmentStore store(8, true);
  StatisticsManager stats;
  // Resident: valid {0,1}, answer {0}. Offer: valid {1,2,3}, answer {3}
  // (and claims bit 1 is a non-answer — fresher knowledge of bit 1).
  store.AdmitOrMerge(MakeFragEntry(1, {2}, {0}, {0, 1}), 1, stats);
  auto offer = MakeFragEntry(1, {2}, {3}, {1, 2, 3});
  const std::uint64_t digest = offer->digest;
  const Graph star = *offer->query;
  store.AdmitOrMerge(std::move(offer), 2, stats);
  EXPECT_EQ(stats.fragment_admissions, 1u);
  EXPECT_EQ(stats.fragment_merges, 1u);
  EXPECT_EQ(store.size(), 1u);

  const CachedQuery* e = store.Probe(digest, star);
  ASSERT_NE(e, nullptr);
  for (const std::size_t i : {0, 1, 2, 3}) EXPECT_TRUE(e->valid.Test(i));
  EXPECT_FALSE(e->valid.Test(4));
  EXPECT_TRUE(e->answer.Test(0));    // outside offer.valid: kept
  EXPECT_FALSE(e->answer.Test(1));   // covered by offer: overwritten to 0
  EXPECT_FALSE(e->answer.Test(2));
  EXPECT_TRUE(e->answer.Test(3));    // offer's answer
}

TEST(FragmentStoreTest, TrueDigestCollisionDropsOffer) {
  FragmentStore store(8, true);
  StatisticsManager stats;
  auto first = MakeFragEntry(1, {2}, {0}, {0});
  const std::uint64_t digest = first->digest;
  const Graph star = *first->query;
  store.AdmitOrMerge(std::move(first), 1, stats);
  // Forge a WL collision: a different star claiming the same digest.
  auto alias = MakeFragEntry(7, {8, 8}, {1}, {1});
  alias->digest = digest;
  store.AdmitOrMerge(std::move(alias), 2, stats);
  EXPECT_EQ(stats.fragment_digest_collisions, 1u);
  EXPECT_EQ(store.size(), 1u);
  const CachedQuery* e = store.Probe(digest, star);
  ASSERT_NE(e, nullptr);
  EXPECT_TRUE(e->answer.Test(0));  // the resident survived untouched
  EXPECT_FALSE(e->valid.Test(1));
}

TEST(FragmentStoreTest, CreditBumpsRecencyAndEvictionPicksColdest) {
  FragmentStore store(2, true);
  StatisticsManager stats;
  auto a = MakeFragEntry(1, {2}, {0}, {0});
  auto b = MakeFragEntry(3, {4}, {0}, {0});
  auto c = MakeFragEntry(5, {6}, {0}, {0});
  const std::uint64_t da = a->digest;
  const std::uint64_t db = b->digest;
  const Graph sa = *a->query;
  const Graph sb = *b->query;
  store.AdmitOrMerge(std::move(a), 1, stats);
  store.AdmitOrMerge(std::move(b), 2, stats);
  // Credit makes `a` the warmer entry despite earlier admission.
  store.Credit(da, /*pruned=*/5, /*now=*/10, stats);
  EXPECT_EQ(stats.fragment_hits, 1u);
  EXPECT_EQ(stats.fragment_candidates_pruned, 5u);
  // Crediting an evicted/unknown digest is a no-op.
  store.Credit(0xdead, 1, 11, stats);
  EXPECT_EQ(stats.fragment_hits, 1u);

  store.AdmitOrMerge(std::move(c), 12, stats);
  EXPECT_EQ(stats.fragment_evictions, 1u);
  EXPECT_EQ(store.size(), 2u);
  EXPECT_NE(store.Probe(da, sa), nullptr);  // credited: kept
  EXPECT_EQ(store.Probe(db, sb), nullptr);  // coldest: evicted
}

TEST(FragmentStoreTest, ValidateRelevantMatchesValidateAll) {
  // Same content in two stores; a change batch touching graphs 2 (mixed
  // ops) and 5 (UA-only) must leave identical valid/answer bits whether
  // reconciled brute-force or through the relevance screen.
  FragmentStore all(8, false);
  FragmentStore relevant(8, true);
  StatisticsManager stats_all;
  StatisticsManager stats_rel;
  struct Spec {
    Label center;
    std::vector<Label> leaves;
    std::vector<std::size_t> answer;
    std::vector<std::size_t> valid;
  };
  const std::vector<Spec> specs = {
      {1, {2}, {0, 2}, {0, 1, 2, 5}},
      {3, {4, 4}, {5}, {2, 3, 5}},
      {6, {1, 2, 3}, {}, {0, 1, 2, 3, 4, 5, 6, 7}},
  };
  for (const Spec& s : specs) {
    all.AdmitOrMerge(MakeFragEntry(s.center, s.leaves, s.answer, s.valid), 1,
                     stats_all);
    relevant.AdmitOrMerge(MakeFragEntry(s.center, s.leaves, s.answer, s.valid),
                          1, stats_rel);
  }
  ChangeCounters counters;
  counters.total[2] = 2;
  counters.edge_adds[2] = 1;
  counters.edge_removes[2] = 1;
  counters.total[5] = 1;
  counters.edge_adds[5] = 1;
  all.ValidateAll(counters, kHorizon, stats_all);
  relevant.ValidateRelevant(counters, kHorizon, stats_rel);

  std::vector<std::pair<DynamicBitset, DynamicBitset>> got_all;
  std::vector<std::pair<DynamicBitset, DynamicBitset>> got_rel;
  all.ForEach([&got_all](const CachedQuery& e) {
    got_all.emplace_back(e.valid, e.answer);
  });
  relevant.ForEach([&got_rel](const CachedQuery& e) {
    got_rel.emplace_back(e.valid, e.answer);
  });
  ASSERT_EQ(got_all.size(), got_rel.size());
  for (std::size_t i = 0; i < got_all.size(); ++i) {
    EXPECT_TRUE(got_all[i].first == got_rel[i].first);
    EXPECT_TRUE(got_all[i].second == got_rel[i].second);
  }
  // Reconcile accounting: brute force touches everything; the screen's
  // touched + skipped partitions the store.
  EXPECT_EQ(stats_all.fragment_reconcile_touched, specs.size());
  EXPECT_EQ(stats_all.fragment_reconcile_skipped, 0u);
  EXPECT_EQ(stats_rel.fragment_reconcile_touched +
                stats_rel.fragment_reconcile_skipped,
            specs.size());
}

TEST(FragmentStoreTest, PurgeForReconcileCountsAndClears) {
  FragmentStore store(8, true);
  StatisticsManager stats;
  store.AdmitOrMerge(MakeFragEntry(1, {2}, {0}, {0}), 1, stats);
  store.AdmitOrMerge(MakeFragEntry(3, {4}, {1}, {1}), 2, stats);
  store.PurgeForReconcile(stats);
  EXPECT_EQ(stats.fragment_reconcile_touched, 2u);
  EXPECT_EQ(store.size(), 0u);
  EXPECT_EQ(store.ApproxBytes(), 0u);
}

TEST(FragmentStoreTest, ExportRestoreRoundTripsAndRecomputesKeys) {
  FragmentStore store(8, true);
  StatisticsManager stats;
  store.AdmitOrMerge(MakeFragEntry(1, {2, 3}, {0, 3}, {0, 1, 3}), 1, stats);
  store.AdmitOrMerge(MakeFragEntry(4, {5}, {2}, {2, 6}), 2, stats);
  const std::uint64_t bytes = store.ApproxBytes();
  EXPECT_GT(bytes, 0u);

  std::vector<CachedQuery> exported = store.Export();
  ASSERT_EQ(exported.size(), 2u);
  // Ascending digest — the deterministic snapshot order.
  EXPECT_LT(exported[0].digest, exported[1].digest);
  std::vector<std::pair<DynamicBitset, DynamicBitset>> want;
  for (const CachedQuery& e : exported) want.emplace_back(e.answer, e.valid);
  // Tamper with a stored key: Restore must recompute it from the graph.
  const std::uint64_t true_digest = exported[0].digest;
  exported[0].digest = 0x1234;

  FragmentStore fresh(8, true);
  StatisticsManager fresh_stats;
  fresh.Restore(std::move(exported), fresh_stats);
  EXPECT_EQ(fresh.size(), 2u);
  EXPECT_EQ(fresh_stats.restored_fragments, 2u);
  EXPECT_EQ(fresh.ApproxBytes(), bytes);
  std::size_t idx = 0;
  bool found = false;
  fresh.ForEach([&](const CachedQuery& e) {
    EXPECT_EQ(WlDigest(*e.query), e.digest);  // tampering did not stick
    ASSERT_LT(idx, want.size());
    EXPECT_TRUE(e.answer == want[idx].first);
    EXPECT_TRUE(e.valid == want[idx].second);
    found = found || e.digest == true_digest;
    ++idx;
  });
  EXPECT_TRUE(found);
}

TEST(FragmentStoreTest, RestoreKeepsBestWhenOverCapacity) {
  FragmentStore store(8, true);
  StatisticsManager stats;
  auto a = MakeFragEntry(1, {2}, {0}, {0});
  auto b = MakeFragEntry(3, {4}, {1}, {1});
  auto c = MakeFragEntry(5, {6}, {2}, {2});
  const std::uint64_t db = b->digest;
  store.AdmitOrMerge(std::move(a), 1, stats);
  store.AdmitOrMerge(std::move(b), 2, stats);
  store.AdmitOrMerge(std::move(c), 3, stats);
  store.Credit(db, /*pruned=*/100, /*now=*/4, stats);

  std::vector<CachedQuery> exported = store.Export();
  FragmentStore small(1, true);
  StatisticsManager small_stats;
  small.Restore(std::move(exported), small_stats);
  EXPECT_EQ(small.size(), 1u);
  bool kept_best = false;
  small.ForEach([&](const CachedQuery& e) { kept_best = e.digest == db; });
  EXPECT_TRUE(kept_best);
}

}  // namespace
}  // namespace gcp
