// Change-relevance index: footprint/posting maintenance across admit,
// evict, purge and restore; the polarity-matched affected predicate; and
// the end-to-end soundness gate — ValidateRelevant must leave every
// resident bitset exactly where ValidateAll leaves it, on randomized
// batches, because the screen only skips entries no counter can mutate.

#include "cache/relevance_index.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "../test_util.hpp"
#include "cache/cache_manager.hpp"
#include "common/rng.hpp"
#include "dataset/change_log.hpp"

namespace gcp {
namespace {

using testing::MakePath;

ChangeCounters Counters(
    std::initializer_list<std::pair<ChangeType, GraphId>> ops) {
  ChangeLog log;
  for (const auto& [type, id] : ops) log.Append(type, id);
  return LogAnalyzer::Analyze(log.ExtractSince(0));
}

/// Entry with `horizon`-wide indicators: `answer_bits` set in the answer,
/// validity all-true unless `valid_bits` is given (then only those).
std::unique_ptr<CachedQuery> MakeEntry(
    CacheEntryId id, std::size_t horizon, std::vector<std::size_t> answer_bits,
    CachedQueryKind kind = CachedQueryKind::kSubgraph,
    const std::vector<std::size_t>* valid_bits = nullptr) {
  auto e = std::make_unique<CachedQuery>();
  e->id = id;
  e->kind = kind;
  e->query = std::make_shared<const Graph>(MakePath({0, 1}));
  e->features = GraphFeatures::Extract(*e->query);
  e->answer = DynamicBitset(horizon);
  for (const auto i : answer_bits) e->answer.Set(i);
  if (valid_bits == nullptr) {
    e->valid = DynamicBitset(horizon, true);
  } else {
    e->valid = DynamicBitset(horizon);
    for (const auto i : *valid_bits) e->valid.Set(i);
  }
  return e;
}

TEST(RelevanceIndexTest, FootprintOfClassifiesOpClasses) {
  // Graph 3: UA+UR (mixed). Graph 70: UA-exclusive. Graph 130: UR-only.
  const ChangeCounters c = Counters({{ChangeType::kEdgeAdd, 3},
                                     {ChangeType::kEdgeRemove, 3},
                                     {ChangeType::kEdgeAdd, 70},
                                     {ChangeType::kEdgeRemove, 130}});
  const RelevanceIndex::BatchFootprint batch = RelevanceIndex::FootprintOf(c);
  ASSERT_EQ(batch.mixed.size(), 1u);
  EXPECT_EQ(batch.mixed[0], 1u << 0);  // block 0 = graphs [0, 64)
  ASSERT_EQ(batch.ua.size(), 1u);
  EXPECT_EQ(batch.ua[0], 1u << 1);  // block 1 = graphs [64, 128)
  ASSERT_EQ(batch.ur.size(), 1u);
  EXPECT_EQ(batch.ur[0], 1u << 2);  // block 2 = graphs [128, 192)
  EXPECT_FALSE(batch.empty());
  EXPECT_TRUE(RelevanceIndex::BatchFootprint{}.empty());
}

TEST(RelevanceIndexTest, StructuralOpsLandInMixed) {
  const RelevanceIndex::BatchFootprint batch = RelevanceIndex::FootprintOf(
      Counters({{ChangeType::kAdd, 5}, {ChangeType::kDelete, 65}}));
  ASSERT_EQ(batch.mixed.size(), 1u);
  EXPECT_EQ(batch.mixed[0], (1u << 0) | (1u << 1));
  EXPECT_TRUE(batch.ua.empty());
  EXPECT_TRUE(batch.ur.empty());
}

TEST(RelevanceIndexTest, InsertComputesPolarityMasksAndPostings) {
  RelevanceIndex idx;
  // 130-wide indicator: answer only at graph 2, validity everywhere →
  // valid∧answer occupies block 0; valid∧¬answer occupies blocks 0-2.
  const auto e = MakeEntry(7, 130, {2});
  idx.Insert(e.get());
  EXPECT_EQ(idx.size(), 1u);
  const RelevanceIndex::Footprint* fp = idx.footprint(7);
  ASSERT_NE(fp, nullptr);
  ASSERT_EQ(fp->pos.size(), 1u);
  EXPECT_EQ(fp->pos[0], 0b001u);
  ASSERT_EQ(fp->neg.size(), 1u);
  EXPECT_EQ(fp->neg[0], 0b111u);
  for (std::uint32_t block = 0; block < 3; ++block) {
    const std::vector<CacheEntryId>* list = idx.postings(block);
    ASSERT_NE(list, nullptr) << "block " << block;
    EXPECT_EQ(*list, std::vector<CacheEntryId>{7});
  }
  EXPECT_EQ(idx.postings(3), nullptr);
}

TEST(RelevanceIndexTest, EraseAndClearDropPostings) {
  RelevanceIndex idx;
  const auto a = MakeEntry(1, 70, {0});
  const auto b = MakeEntry(2, 70, {65});
  idx.Insert(a.get());
  idx.Insert(b.get());
  ASSERT_NE(idx.postings(0), nullptr);
  EXPECT_EQ(idx.postings(0)->size(), 2u);
  idx.Erase(1);
  ASSERT_NE(idx.postings(0), nullptr);
  EXPECT_EQ(*idx.postings(0), std::vector<CacheEntryId>{2});
  EXPECT_EQ(idx.footprint(1), nullptr);
  idx.Erase(1);  // double-erase is a no-op
  idx.Clear();
  EXPECT_EQ(idx.size(), 0u);
  EXPECT_EQ(idx.postings(0), nullptr);
  EXPECT_EQ(idx.postings(1), nullptr);
}

TEST(RelevanceIndexTest, RefreshTightensAfterClears) {
  RelevanceIndex idx;
  auto e = MakeEntry(4, 130, {2});
  idx.Insert(e.get());
  ASSERT_NE(idx.postings(1), nullptr);
  // Clear every valid bit of block 1 (graphs 64..127); Refresh must drop
  // the block from the footprint and its posting list.
  for (std::size_t i = 64; i < 128; ++i) e->valid.Set(i, false);
  idx.Refresh(e.get());
  const RelevanceIndex::Footprint* fp = idx.footprint(4);
  ASSERT_NE(fp, nullptr);
  EXPECT_EQ(fp->neg[0], 0b101u);
  EXPECT_EQ(idx.postings(1), nullptr);
  // Refresh of an un-indexed entry is a no-op.
  const auto stranger = MakeEntry(99, 10, {});
  idx.Refresh(stranger.get());
  EXPECT_EQ(idx.footprint(99), nullptr);
}

TEST(RelevanceIndexTest, UaPolaritySkipsPositiveOnlySubEntry) {
  RelevanceIndex idx;
  // Sub entry whose only valid bits are positive (valid == answer):
  // a UA-exclusive batch preserves positive sub results → not affected.
  const std::vector<std::size_t> only{5};
  const auto e =
      MakeEntry(1, 64, {5}, CachedQueryKind::kSubgraph, &only);
  idx.Insert(e.get());
  EXPECT_TRUE(idx.CollectAffected(RelevanceIndex::FootprintOf(
                                      Counters({{ChangeType::kEdgeAdd, 7}})))
                  .empty());
  // A UR-exclusive batch clears positive sub bits → affected.
  EXPECT_EQ(idx.CollectAffected(RelevanceIndex::FootprintOf(
                                    Counters({{ChangeType::kEdgeRemove, 7}})))
                .size(),
            1u);
  // Mixed ops clear either polarity → affected.
  EXPECT_EQ(idx.CollectAffected(RelevanceIndex::FootprintOf(
                                    Counters({{ChangeType::kEdgeAdd, 7},
                                              {ChangeType::kEdgeRemove, 7}})))
                .size(),
            1u);
}

TEST(RelevanceIndexTest, PolarityInvertsForSuperEntries) {
  RelevanceIndex idx;
  // Super entry, valid == answer (positive-only): UA clears positive
  // super bits (an added edge can break G ⊆ q) → affected; UR preserves
  // them → skipped.
  const std::vector<std::size_t> only{5};
  const auto e =
      MakeEntry(1, 64, {5}, CachedQueryKind::kSupergraph, &only);
  idx.Insert(e.get());
  EXPECT_EQ(idx.CollectAffected(RelevanceIndex::FootprintOf(
                                    Counters({{ChangeType::kEdgeAdd, 7}})))
                .size(),
            1u);
  EXPECT_TRUE(idx.CollectAffected(RelevanceIndex::FootprintOf(
                                      Counters({{ChangeType::kEdgeRemove, 7}})))
                  .empty());
}

TEST(RelevanceIndexTest, BatchBeyondIndicatorPrefixIsSkipped) {
  RelevanceIndex idx;
  // 64-wide indicator; the batch touches only graphs ≥ 128. Algorithm 2
  // ignores graphs beyond the indicator (graph_id >= valid.size()), and
  // so does the min-prefix intersection.
  const auto e = MakeEntry(1, 64, {3});
  idx.Insert(e.get());
  EXPECT_TRUE(idx.CollectAffected(RelevanceIndex::FootprintOf(Counters(
                                      {{ChangeType::kEdgeAdd, 130},
                                       {ChangeType::kEdgeRemove, 130}})))
                  .empty());
}

TEST(RelevanceIndexTest, CollectAffectedAscendingAndDeduped) {
  RelevanceIndex idx;
  // Entries spanning two blocks each, so a two-block batch would find
  // both through two posting lists — the result must dedup.
  const auto a = MakeEntry(9, 130, {2, 70});
  const auto b = MakeEntry(3, 130, {5, 66});
  idx.Insert(a.get());
  idx.Insert(b.get());
  const auto affected = idx.CollectAffected(RelevanceIndex::FootprintOf(
      Counters({{ChangeType::kDelete, 2}, {ChangeType::kDelete, 70}})));
  ASSERT_EQ(affected.size(), 2u);
  EXPECT_EQ(affected[0]->id, 3u);  // ascending by id
  EXPECT_EQ(affected[1]->id, 9u);
}

// --- CacheManager integration: the store keeps the index in sync across
// admit / evict / purge / restore, and ValidateRelevant is bit-exact
// against the brute-force oracle on randomized batches.

CacheManagerOptions ManagerOptions(bool maintain, std::size_t cache = 64,
                                   std::size_t window = 8) {
  CacheManagerOptions opts;
  opts.cache_capacity = cache;
  opts.window_capacity = window;
  opts.policy = ReplacementPolicy::kPin;
  opts.maintain_relevance_index = maintain;
  return opts;
}

TEST(RelevanceIndexManagerTest, AdmitEvictPurgeRestoreKeepIndexInSync) {
  CacheManager cm(ManagerOptions(true, /*cache=*/2, /*window=*/2));
  const std::size_t horizon = 8;
  auto admit = [&](Label tag, std::uint64_t now) {
    DynamicBitset answer(horizon);
    DynamicBitset valid(horizon, true);
    return cm.Admit(MakePath({tag, tag}), CachedQueryKind::kSubgraph,
                    std::move(answer), std::move(valid), now, 1.0)
        .value();
  };
  const CacheEntryId a = admit(0, 0);
  EXPECT_EQ(cm.relevance_index().size(), 1u);
  const CacheEntryId b = admit(1, 1);  // merge #1: both fit
  cm.RecordBenefit(b, 10, 2);
  admit(2, 3);
  admit(3, 4);  // merge #2: 4 entries → capacity 2, evictions
  EXPECT_EQ(cm.resident(), 2u);
  EXPECT_EQ(cm.relevance_index().size(), 2u);
  EXPECT_EQ(cm.relevance_index().footprint(a), nullptr);  // evicted
  ASSERT_NE(cm.relevance_index().footprint(b), nullptr);

  // EVI reconcile purge: index emptied, every resident counted touched.
  const std::size_t resident_before = cm.resident();
  cm.PurgeForReconcile();
  EXPECT_EQ(cm.relevance_index().size(), 0u);
  EXPECT_EQ(cm.stats().reconcile_entries_touched, resident_before);

  // Restore re-registers entries under fresh ids.
  CacheManager donor(ManagerOptions(true));
  {
    DynamicBitset answer(horizon);
    answer.Set(1);
    DynamicBitset valid(horizon, true);
    donor.Admit(MakePath({4, 4}), CachedQueryKind::kSubgraph,
                std::move(answer), std::move(valid), 0, 1.0);
  }
  cm.RestoreEntries(donor.ExportEntries());
  EXPECT_EQ(cm.resident(), 1u);
  EXPECT_EQ(cm.relevance_index().size(), 1u);
}

TEST(RelevanceIndexManagerTest, OracleManagerKeepsIndexEmpty) {
  CacheManager cm(ManagerOptions(false));
  DynamicBitset answer(4);
  DynamicBitset valid(4, true);
  cm.Admit(MakePath({0, 0}), CachedQueryKind::kSubgraph, std::move(answer),
           std::move(valid), 0, 1.0);
  EXPECT_EQ(cm.relevance_index().size(), 0u);
}

std::string BitsetString(const DynamicBitset& bits) {
  std::string s(bits.size(), '0');
  for (std::size_t i = 0; i < bits.size(); ++i) {
    if (bits.Test(i)) s[i] = '1';
  }
  return s;
}

/// All resident (id, kind, valid, answer) tuples, ascending by id.
std::vector<std::string> StateOf(const CacheManager& cm) {
  std::vector<std::string> out;
  cm.ForEachEntry([&out](const CachedQuery& e) {
    out.push_back(std::to_string(e.id) + "|" +
                  (e.kind == CachedQueryKind::kSubgraph ? "sub" : "super") +
                  "|" + BitsetString(e.valid) + "|" + BitsetString(e.answer));
  });
  std::sort(out.begin(), out.end());
  return out;
}

TEST(RelevanceIndexManagerTest, ValidateRelevantMatchesOracleRandomized) {
  // Two stores built identically — one reconciles through the relevance
  // index, the other brute-force. After every randomized batch all
  // resident bitsets must be identical, and the accounting invariants
  // must hold: touched + skipped == resident per event on the indexed
  // store, skipped == 0 always on the oracle.
  Rng rng(1234);
  const std::size_t horizon = 300;  // several 64-id blocks
  CacheManager indexed(ManagerOptions(true));
  CacheManager oracle(ManagerOptions(false));
  for (std::size_t n = 0; n < 40; ++n) {
    const auto kind = (n % 3 == 0) ? CachedQueryKind::kSupergraph
                                   : CachedQueryKind::kSubgraph;
    DynamicBitset answer(horizon);
    DynamicBitset valid(horizon);
    // Valid bits confined to one random 64-id block per entry, so
    // footprints are localized and the screen has something to skip
    // (answer bits land anywhere — only valid∧answer matters).
    const std::size_t lo = rng.UniformBelow(horizon / 64) * 64;
    const std::size_t hi = std::min(horizon, lo + 64);
    for (std::size_t i = 0; i < horizon; ++i) {
      if (rng.UniformBelow(4) == 0) answer.Set(i);
      if (i >= lo && i < hi && rng.UniformBelow(3) != 0) valid.Set(i);
    }
    const Label tag = static_cast<Label>(n);
    indexed.Admit(MakePath({tag, tag}), kind, answer, valid, n, 1.0);
    oracle.Admit(MakePath({tag, tag}), kind, std::move(answer),
                 std::move(valid), n, 1.0);
  }
  ASSERT_EQ(StateOf(indexed), StateOf(oracle));

  std::uint64_t events = 0;
  for (std::size_t round = 0; round < 50; ++round) {
    // Localized batch: a handful of ops inside one random 64-id block,
    // plus occasionally a far-away op, mixing all four op types.
    ChangeLog log;
    const GraphId base =
        static_cast<GraphId>(rng.UniformBelow(horizon / 64) * 64);
    const std::size_t ops = 1 + rng.UniformBelow(5);
    for (std::size_t k = 0; k < ops; ++k) {
      const GraphId id = base + static_cast<GraphId>(rng.UniformBelow(64));
      switch (rng.UniformBelow(4)) {
        case 0:
          log.Append(ChangeType::kEdgeAdd, id);
          break;
        case 1:
          log.Append(ChangeType::kEdgeRemove, id);
          break;
        case 2:
          log.Append(ChangeType::kAdd, id);
          break;
        default:
          log.Append(ChangeType::kDelete, id);
          break;
      }
    }
    const ChangeCounters counters = LogAnalyzer::Analyze(log.ExtractSince(0));
    indexed.ValidateRelevant(counters, horizon);
    oracle.ValidateAll(counters, horizon);
    ++events;
    ASSERT_EQ(StateOf(indexed), StateOf(oracle)) << "round " << round;
    EXPECT_EQ(indexed.stats().reconcile_entries_touched +
                  indexed.stats().reconcile_entries_skipped,
              events * indexed.resident());
    EXPECT_EQ(oracle.stats().reconcile_entries_skipped, 0u);
  }
  // Localized batches against block-granular footprints must actually
  // skip work — that is the point of the index.
  EXPECT_GT(indexed.stats().reconcile_entries_skipped, 0u);
  EXPECT_EQ(oracle.stats().reconcile_entries_touched,
            events * oracle.resident());
}

TEST(RelevanceIndexManagerTest, ValidateRelevantExtendsAllIndicators) {
  // Extension to a new horizon applies to every resident entry even when
  // the batch affects none of them (new ids default to invalid).
  CacheManager cm(ManagerOptions(true));
  DynamicBitset answer(4);
  DynamicBitset valid(4, true);
  cm.Admit(MakePath({0, 0}), CachedQueryKind::kSubgraph, std::move(answer),
           std::move(valid), 0, 1.0);
  const ChangeCounters empty;
  cm.ValidateRelevant(empty, 10);
  cm.ForEachEntry([](const CachedQuery& e) {
    EXPECT_EQ(e.valid.size(), 10u);
    EXPECT_EQ(e.answer.size(), 10u);
    EXPECT_FALSE(e.valid.Test(9));
  });
  EXPECT_EQ(cm.stats().reconcile_entries_touched, 0u);
  EXPECT_EQ(cm.stats().reconcile_entries_skipped, 1u);
}

}  // namespace
}  // namespace gcp
