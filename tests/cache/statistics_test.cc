#include "cache/statistics.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "../test_util.hpp"

namespace gcp {
namespace {

TEST(StatisticsTest, SquaredCoVZeroForDegenerate) {
  EXPECT_DOUBLE_EQ(StatisticsManager::SquaredCoV({}), 0.0);
  EXPECT_DOUBLE_EQ(StatisticsManager::SquaredCoV({5.0}), 0.0);
  EXPECT_DOUBLE_EQ(StatisticsManager::SquaredCoV({0.0, 0.0, 0.0}), 0.0);
}

TEST(StatisticsTest, SquaredCoVUniformValuesIsZero) {
  EXPECT_DOUBLE_EQ(StatisticsManager::SquaredCoV({3.0, 3.0, 3.0, 3.0}), 0.0);
}

TEST(StatisticsTest, SquaredCoVKnownValue) {
  // values {0, 2}: mean 1, var 1 → CoV² = 1.
  EXPECT_DOUBLE_EQ(StatisticsManager::SquaredCoV({0.0, 2.0}), 1.0);
}

TEST(StatisticsTest, SquaredCoVHighVariability) {
  // One heavy hitter among zeros — the HD trigger case.
  EXPECT_GT(StatisticsManager::SquaredCoV({0.0, 0.0, 0.0, 100.0}), 1.0);
}

TEST(StatisticsTest, SquaredCoVExponentialLikeIsAboutOne) {
  // Samples of an exponential distribution have CoV ≈ 1 (paper's threshold
  // rationale).
  std::vector<double> v;
  for (int i = 1; i <= 2000; ++i) {
    // Inverse-CDF sampling at evenly spaced quantiles.
    const double u = (i - 0.5) / 2000.0;
    v.push_back(-std::log(1.0 - u));
  }
  EXPECT_NEAR(StatisticsManager::SquaredCoV(v), 1.0, 0.1);
}

TEST(StatisticsTest, StructuralCostGrowsWithQuerySize) {
  const double small =
      StatisticsManager::StructuralCostEstimateMs(testing::MakePath({0, 1}));
  const double large = StatisticsManager::StructuralCostEstimateMs(
      testing::MakeClique(10, 0));
  EXPECT_GT(large, small);
  EXPECT_GT(small, 0.0);
}

TEST(StatisticsTest, RecordBenefitUpdatesEntry) {
  CachedQuery e;
  e.query = std::make_shared<const Graph>(testing::MakePath({0, 1}));
  StatisticsManager::RecordBenefit(e, 12, 77);
  EXPECT_EQ(e.tests_saved, 12u);
  EXPECT_EQ(e.hits, 1u);
  EXPECT_EQ(e.last_used_at, 77u);
  StatisticsManager::RecordBenefit(e, 3, 99);
  EXPECT_EQ(e.tests_saved, 15u);
  EXPECT_EQ(e.hits, 2u);
  EXPECT_EQ(e.last_used_at, 99u);
}

TEST(StatisticsTest, ZeroBenefitStillCountsHit) {
  CachedQuery e;
  e.query = std::make_shared<const Graph>(testing::MakePath({0, 1}));
  StatisticsManager::RecordBenefit(e, 0, 5);
  EXPECT_EQ(e.tests_saved, 0u);
  EXPECT_EQ(e.hits, 1u);
}

}  // namespace
}  // namespace gcp
