#include "cache/snapshot.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <sstream>

#include "../test_util.hpp"
#include "core/graphcache_plus.hpp"

namespace gcp {
namespace {

using testing::MakeCycle;
using testing::MakePath;
using testing::MakeSingleton;

CacheSnapshot SampleSnapshot() {
  CacheSnapshot s;
  s.watermark = 7;
  s.id_horizon = 5;
  CachedQuery e;
  e.kind = CachedQueryKind::kSubgraph;
  e.query = std::make_shared<const Graph>(MakePath({0, 1, 2}));
  e.answer = DynamicBitset(5);
  e.answer.Set(1);
  e.answer.Set(3);
  e.valid = DynamicBitset(5, true);
  e.valid.Set(4, false);
  e.tests_saved = 42;
  e.hits = 9;
  e.exact_hits = 2;
  e.sub_hits = 3;
  e.super_hits = 4;
  e.admitted_at = 11;
  e.last_used_at = 13;
  e.est_test_cost_ms = 0.25;
  s.entries.push_back(std::move(e));
  CachedQuery super;
  super.kind = CachedQueryKind::kSupergraph;
  super.query = std::make_shared<const Graph>(MakeCycle({5, 5, 5}));
  super.answer = DynamicBitset(5);
  super.valid = DynamicBitset(5);
  s.entries.push_back(std::move(super));
  return s;
}

TEST(SnapshotTest, StreamRoundTrip) {
  const CacheSnapshot original = SampleSnapshot();
  std::ostringstream os;
  WriteCacheSnapshot(os, original);
  std::istringstream is(os.str());
  auto parsed = ReadCacheSnapshot(is);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  const CacheSnapshot& s = parsed.value();
  EXPECT_EQ(s.watermark, 7u);
  EXPECT_EQ(s.id_horizon, 5u);
  ASSERT_EQ(s.entries.size(), 2u);
  const CachedQuery& e = s.entries[0];
  EXPECT_EQ(e.kind, CachedQueryKind::kSubgraph);
  EXPECT_EQ(*e.query, *original.entries[0].query);
  EXPECT_EQ(e.answer, original.entries[0].answer);
  EXPECT_EQ(e.valid, original.entries[0].valid);
  EXPECT_EQ(e.tests_saved, 42u);
  EXPECT_EQ(e.hits, 9u);
  EXPECT_EQ(e.exact_hits, 2u);
  EXPECT_EQ(e.sub_hits, 3u);
  EXPECT_EQ(e.super_hits, 4u);
  EXPECT_EQ(e.admitted_at, 11u);
  EXPECT_EQ(e.last_used_at, 13u);
  EXPECT_DOUBLE_EQ(e.est_test_cost_ms, 0.25);
  EXPECT_EQ(s.entries[1].kind, CachedQueryKind::kSupergraph);
}

TEST(SnapshotTest, RejectsGarbage) {
  {
    std::istringstream is("not a snapshot");
    EXPECT_EQ(ReadCacheSnapshot(is).status().code(), StatusCode::kCorruption);
  }
  {
    std::istringstream is("GCPCACHE v9\nwatermark 0\n");
    EXPECT_FALSE(ReadCacheSnapshot(is).ok());
  }
  {
    // Truncated entry block.
    std::istringstream is(
        "GCPCACHE v1\nwatermark 0\nhorizon 2\nentries 1\n"
        "entry kind=0 admitted=0 last_used=0 hits=0 tests_saved=0 exact=0 "
        "sub=0 super=0 cost=0\nanswer 00\nvalid 00\nt # 0\nv 0 1\n");
    EXPECT_EQ(ReadCacheSnapshot(is).status().code(), StatusCode::kCorruption);
  }
  {
    // answer/valid width mismatch.
    std::istringstream is(
        "GCPCACHE v1\nwatermark 0\nhorizon 2\nentries 1\n"
        "entry kind=0 admitted=0 last_used=0 hits=0 tests_saved=0 exact=0 "
        "sub=0 super=0 cost=0\nanswer 00\nvalid 000\nt # 0\nv 0 1\n"
        "endentry\n");
    EXPECT_EQ(ReadCacheSnapshot(is).status().code(), StatusCode::kCorruption);
  }
}

TEST(SnapshotTest, FragmentSectionRoundTripsAndV1DropsIt) {
  CacheSnapshot original = SampleSnapshot();
  CachedQuery f;
  f.kind = CachedQueryKind::kSubgraph;
  f.query = std::make_shared<const Graph>(MakePath({0, 1}));
  f.answer = DynamicBitset(5);
  f.answer.Set(2);
  f.valid = DynamicBitset(5, true);
  f.tests_saved = 3;
  original.fragments.push_back(std::move(f));
  {
    // v2 carries the fragment section.
    std::ostringstream os;
    WriteCacheSnapshot(os, original);
    std::istringstream is(os.str());
    auto parsed = ReadCacheSnapshot(is);
    ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
    ASSERT_EQ(parsed.value().fragments.size(), 1u);
    const CachedQuery& g = parsed.value().fragments[0];
    EXPECT_EQ(*g.query, *original.fragments[0].query);
    EXPECT_EQ(g.answer, original.fragments[0].answer);
    EXPECT_EQ(g.valid, original.fragments[0].valid);
    EXPECT_EQ(g.tests_saved, 3u);
  }
  {
    // A v1 stream of the same cache loads with the whole-query entries
    // intact and the fragment store cold — the backward-compat contract.
    std::ostringstream os;
    WriteCacheSnapshot(os, original, /*version=*/1);
    EXPECT_EQ(os.str().find("fragment"), std::string::npos);
    std::istringstream is(os.str());
    auto parsed = ReadCacheSnapshot(is);
    ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
    EXPECT_EQ(parsed.value().entries.size(), 2u);
    EXPECT_TRUE(parsed.value().fragments.empty());
  }
}

std::vector<Graph> Molecules() {
  return {MakePath({0, 0, 1}), MakePath({0, 1}), MakeCycle({0, 0, 0}),
          MakePath({2, 0, 1}), MakeSingleton(2)};
}

TEST(SnapshotTest, WarmRestartSkipsColdStart) {
  const std::string path = ::testing::TempDir() + "/gcp_snapshot_warm.txt";
  GraphCachePlusOptions opts;
  opts.model = CacheModel::kCon;
  {
    GraphDataset ds;
    ds.Bootstrap(Molecules());
    GraphCachePlus gc(&ds, opts);
    gc.SubgraphQuery(MakePath({0, 1}));
    ASSERT_TRUE(gc.SaveCache(path).ok());
  }
  // "Restart": fresh dataset of identical lineage, fresh GC+.
  GraphDataset ds;
  ds.Bootstrap(Molecules());
  GraphCachePlus gc(&ds, opts);
  ASSERT_TRUE(gc.LoadCache(path).ok());
  const QueryResult r = gc.SubgraphQuery(MakePath({0, 1}));
  EXPECT_TRUE(r.metrics.exact_hit);        // warm from the snapshot
  EXPECT_EQ(r.metrics.si_tests, 0u);
  EXPECT_EQ(r.answer, (std::vector<GraphId>{0, 1, 3}));
  std::remove(path.c_str());
}

TEST(SnapshotTest, WarmRestartRestoresFragments) {
  const std::string path = ::testing::TempDir() + "/gcp_snapshot_frag.txt";
  GraphCachePlusOptions opts;
  opts.model = CacheModel::kCon;
  {
    GraphDataset ds;
    ds.Bootstrap(Molecules());
    GraphCachePlus gc(&ds, opts);
    gc.SubgraphQuery(MakePath({0, 1}));  // miss → learns the 0–1 star
    gc.FlushMaintenance();
    ASSERT_GT(gc.CacheStatsSnapshot().fragment_admissions, 0u);
    ASSERT_TRUE(gc.SaveCache(path).ok());
  }
  GraphDataset ds;
  ds.Bootstrap(Molecules());
  GraphCachePlus gc(&ds, opts);
  ASSERT_TRUE(gc.LoadCache(path).ok());
  const StatisticsManager stats = gc.CacheStatsSnapshot();
  EXPECT_GT(stats.restored_fragments, 0u);
  EXPECT_GT(stats.approx_fragment_bytes, 0u);
  // A fresh pattern sharing the 0–1 one-hop star probes the restored
  // fragment: the warm tier engages without ever recomputing the star.
  const QueryResult r = gc.SubgraphQuery(MakePath({0, 1, 0}));
  EXPECT_GT(r.metrics.fragment_hits, 0u);
  EXPECT_TRUE(r.answer.empty());  // no molecule has a 0–1–0 path
  std::remove(path.c_str());
}

TEST(SnapshotTest, StaleSnapshotReconciledThroughLog) {
  const std::string path = ::testing::TempDir() + "/gcp_snapshot_stale.txt";
  GraphCachePlusOptions opts;
  opts.model = CacheModel::kCon;
  GraphDataset ds;
  ds.Bootstrap(Molecules());
  {
    GraphCachePlus gc(&ds, opts);
    gc.SubgraphQuery(MakePath({0, 1}));  // answer {0,1,3}
    ASSERT_TRUE(gc.SaveCache(path).ok());
  }
  // Dataset changes AFTER the snapshot: graph 1 loses its only edge.
  ASSERT_TRUE(ds.RemoveEdge(1, 0, 1).ok());
  GraphCachePlus gc(&ds, opts);
  ASSERT_TRUE(gc.LoadCache(path).ok());
  // The restored entry's validity on graph 1 must be reconciled through
  // the change-log suffix before use — answer must be exact.
  const QueryResult r = gc.SubgraphQuery(MakePath({0, 1}));
  EXPECT_EQ(r.answer, (std::vector<GraphId>{0, 3}));
  std::remove(path.c_str());
}

TEST(SnapshotTest, LoadRejectsForeignLineage) {
  const std::string path = ::testing::TempDir() + "/gcp_snapshot_foreign.txt";
  GraphCachePlusOptions opts;
  {
    GraphDataset ds;
    ds.Bootstrap(Molecules());
    GraphCachePlus gc(&ds, opts);
    gc.SubgraphQuery(MakePath({0, 1}));
    // Make the saved watermark non-zero.
    ds.AddGraph(MakeSingleton(0));
    gc.SubgraphQuery(MakePath({0, 1}));
    ASSERT_TRUE(gc.SaveCache(path).ok());
  }
  // A fresh dataset whose log is behind the snapshot's watermark.
  GraphDataset ds;
  ds.Bootstrap(Molecules());
  GraphCachePlus gc(&ds, opts);
  EXPECT_EQ(gc.LoadCache(path).code(), StatusCode::kFailedPrecondition);
  std::remove(path.c_str());
}

TEST(SnapshotTest, RestoreEntriesCapsAtCapacity) {
  CacheManager cm(CacheManagerOptions{2, 2, ReplacementPolicy::kPin, 1});
  std::vector<CachedQuery> entries(5);
  for (std::size_t i = 0; i < entries.size(); ++i) {
    entries[i].query =
        std::make_shared<const Graph>(MakePath({static_cast<Label>(i), 0}));
    entries[i].answer = DynamicBitset(3);
    entries[i].valid = DynamicBitset(3, true);
    entries[i].tests_saved = i;  // entry 4 is most valuable
  }
  cm.RestoreEntries(std::move(entries));
  EXPECT_EQ(cm.cache_size(), 2u);
  EXPECT_EQ(cm.window_size(), 0u);
  // The two highest-R entries survived.
  std::size_t max_r = 0;
  cm.ForEachEntry([&](const CachedQuery& e) {
    max_r = std::max<std::size_t>(max_r, e.tests_saved);
  });
  EXPECT_EQ(max_r, 4u);
}

}  // namespace
}  // namespace gcp
