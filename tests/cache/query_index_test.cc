#include "cache/query_index.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "../test_util.hpp"
#include "graph/canonical.hpp"
#include "graph/generators.hpp"
#include "match/matcher.hpp"
#include "workload/query_gen.hpp"

namespace gcp {
namespace {

using testing::MakeCycle;
using testing::MakePath;

std::unique_ptr<CachedQuery> MakeIndexedEntry(CacheEntryId id, Graph q) {
  auto e = std::make_unique<CachedQuery>();
  e->id = id;
  e->features = GraphFeatures::Extract(q);
  e->digest = WlDigest(q);
  e->query = std::make_shared<const Graph>(std::move(q));
  return e;
}

TEST(QueryIndexTest, InsertEraseSize) {
  QueryIndex index;
  auto e1 = MakeIndexedEntry(1, MakePath({0, 1}));
  auto e2 = MakeIndexedEntry(2, MakePath({0, 1, 2}));
  index.Insert(e1.get());
  index.Insert(e2.get());
  EXPECT_EQ(index.size(), 2u);
  index.Erase(1);
  EXPECT_EQ(index.size(), 1u);
  index.Erase(1);  // idempotent
  EXPECT_EQ(index.size(), 1u);
  index.Clear();
  EXPECT_EQ(index.size(), 0u);
}

TEST(QueryIndexTest, SupergraphCandidatesAreFeatureSupersets) {
  QueryIndex index;
  auto big = MakeIndexedEntry(1, MakePath({0, 1, 0, 1, 0}));    // P5
  auto small = MakeIndexedEntry(2, MakePath({0, 1}));           // P2
  auto other = MakeIndexedEntry(3, MakePath({5, 5, 5}));        // disjoint labels
  index.Insert(big.get());
  index.Insert(small.get());
  index.Insert(other.get());

  const GraphFeatures probe = GraphFeatures::Extract(MakePath({0, 1, 0}));
  const auto supers = index.SupergraphCandidates(probe);
  ASSERT_EQ(supers.size(), 1u);
  EXPECT_EQ(supers[0]->id, 1u);

  const auto subs = index.SubgraphCandidates(probe);
  ASSERT_EQ(subs.size(), 1u);
  EXPECT_EQ(subs[0]->id, 2u);
}

TEST(QueryIndexTest, DigestMatchesFindIsomorphs) {
  QueryIndex index;
  Rng rng(3);
  const Graph g = RandomConnectedGraph(rng, 8, 3, 3);
  auto e1 = MakeIndexedEntry(1, RandomlyPermuted(rng, g));
  auto e2 = MakeIndexedEntry(2, MakeCycle({7, 7, 7}));
  index.Insert(e1.get());
  index.Insert(e2.get());
  const auto matches = index.DigestMatches(WlDigest(g));
  ASSERT_EQ(matches.size(), 1u);
  EXPECT_EQ(matches[0]->id, 1u);
  EXPECT_TRUE(index.DigestMatches(0xdeadbeef).empty());
}

TEST(QueryIndexTest, EraseRemovesDigestEntry) {
  QueryIndex index;
  auto e = MakeIndexedEntry(9, MakePath({1, 2, 3}));
  index.Insert(e.get());
  ASSERT_EQ(index.DigestMatches(e->digest).size(), 1u);
  index.Erase(9);
  EXPECT_TRUE(index.DigestMatches(e->digest).empty());
}

TEST(QueryIndexTest, DuplicateDigestsBothReturned) {
  QueryIndex index;
  auto e1 = MakeIndexedEntry(1, MakePath({4, 4}));
  auto e2 = MakeIndexedEntry(2, MakePath({4, 4}));
  index.Insert(e1.get());
  index.Insert(e2.get());
  EXPECT_EQ(index.DigestMatches(e1->digest).size(), 2u);
  index.Erase(1);
  const auto rest = index.DigestMatches(e2->digest);
  ASSERT_EQ(rest.size(), 1u);
  EXPECT_EQ(rest[0]->id, 2u);
}

// Edge-count banding (second index dimension): entries sharing a vertex
// band but differing widely in edge count must be separable by the edge
// screen in both directions.
TEST(QueryIndexTest, EdgeBandSeparatesSameVertexBand) {
  QueryIndex index;
  // Both graphs sit in vertex band 2 (4 resp. 5 vertices) but straddle
  // the 3→4 edge band boundary (floor(log2): band 1 vs band 2), so the
  // two entries land in DIFFERENT (vband, eband) buckets: the supergraph
  // probe starts past the sparse bucket (lower_bound on the composite
  // key) and the subgraph probe jumps over the dense bucket (the
  // edge-band re-seek).
  auto sparse = MakeIndexedEntry(1, MakePath({0, 1, 0, 1}));      // 3 edges
  auto dense = MakeIndexedEntry(2, MakeCycle({0, 1, 0, 1}));      // 4 edges
  index.Insert(sparse.get());
  index.Insert(dense.get());

  // A probe with 4 edges can only be contained by entries with >= 4
  // edges: the sparse path's whole (vband 2, eband 1) bucket is skipped.
  const GraphFeatures cycle_probe =
      GraphFeatures::Extract(MakeCycle({0, 1, 0, 1}));
  const auto supers = index.SupergraphCandidates(cycle_probe);
  ASSERT_EQ(supers.size(), 1u);
  EXPECT_EQ(supers[0]->id, 2u);

  // Conversely, subgraph candidates of the 3-edge path cannot include the
  // 4-edge cycle: the (vband 2, eband 2) bucket is jumped over.
  const GraphFeatures path_probe =
      GraphFeatures::Extract(MakePath({0, 1, 0, 1}));
  const auto subs = index.SubgraphCandidates(path_probe);
  ASSERT_EQ(subs.size(), 1u);
  EXPECT_EQ(subs[0]->id, 1u);
}

// Zero-edge entries (singleton queries) land in edge band 0 and must stay
// discoverable from any larger probe.
TEST(QueryIndexTest, ZeroEdgeBandHandled) {
  QueryIndex index;
  auto singleton = MakeIndexedEntry(1, testing::MakeSingleton(3));
  index.Insert(singleton.get());
  const GraphFeatures probe =
      GraphFeatures::Extract(MakePath({3, 1, 2}));
  const auto subs = index.SubgraphCandidates(probe);
  ASSERT_EQ(subs.size(), 1u);
  EXPECT_EQ(subs[0]->id, 1u);
  // And a singleton probe finds the singleton entry as a supergraph
  // candidate (equal features).
  const auto supers =
      index.SupergraphCandidates(GraphFeatures::Extract(
          testing::MakeSingleton(3)));
  ASSERT_EQ(supers.size(), 1u);
}

// No-false-drop property: every true containment between a probe and an
// indexed query must appear in the candidate shortlists.
TEST(QueryIndexTest, NoFalseDropsOnRandomCorpus) {
  Rng rng(17);
  const auto matcher = MakeMatcher(MatcherKind::kVf2Plus);
  std::vector<std::unique_ptr<CachedQuery>> entries;
  QueryIndex index;
  for (CacheEntryId id = 1; id <= 40; ++id) {
    entries.push_back(MakeIndexedEntry(
        id, RandomConnectedGraph(rng, 3 + rng.UniformBelow(8),
                                 rng.UniformBelow(4), 3)));
    index.Insert(entries.back().get());
  }
  for (int probe_round = 0; probe_round < 25; ++probe_round) {
    const Graph probe = RandomConnectedGraph(
        rng, 3 + rng.UniformBelow(8), rng.UniformBelow(4), 3);
    const GraphFeatures pf = GraphFeatures::Extract(probe);
    const auto supers = index.SupergraphCandidates(pf);
    const auto subs = index.SubgraphCandidates(pf);
    for (const auto& e : entries) {
      if (matcher->Contains(probe, *e->query)) {
        EXPECT_NE(std::find(supers.begin(), supers.end(), e.get()),
                  supers.end())
            << "probe ⊆ cached missed by SupergraphCandidates";
      }
      if (matcher->Contains(*e->query, probe)) {
        EXPECT_NE(std::find(subs.begin(), subs.end(), e.get()), subs.end())
            << "cached ⊆ probe missed by SubgraphCandidates";
      }
    }
  }
}

}  // namespace
}  // namespace gcp
