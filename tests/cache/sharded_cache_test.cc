// ShardedCache router: digest routing, capacity splitting, cross-shard
// aggregation, snapshot re-routing, and the drain-scope lock-violation
// detector the stress tests lean on.

#include "cache/sharded_cache.hpp"

#include <gtest/gtest.h>

#include "graph/canonical.hpp"
#include "../test_util.hpp"

namespace gcp {
namespace {

CacheManagerOptions TotalOptions() {
  CacheManagerOptions o;
  o.cache_capacity = 10;
  o.window_capacity = 4;
  return o;
}

// Window-admits a tiny path query into its digest's home shard and
// returns (shard, id).
std::pair<std::size_t, CacheEntryId> AdmitPath(ShardedCache& cache,
                                               std::size_t num_labels,
                                               std::uint64_t now) {
  std::vector<Label> labels;
  for (std::size_t i = 0; i < num_labels; ++i) {
    labels.push_back(static_cast<Label>(i % 3));
  }
  std::vector<std::pair<VertexId, VertexId>> edges;
  for (std::size_t i = 0; i + 1 < num_labels; ++i) {
    edges.emplace_back(static_cast<VertexId>(i), static_cast<VertexId>(i + 1));
  }
  Graph g = testing::MakeGraph(labels, edges);
  const std::size_t s = cache.ShardOfDigest(WlDigest(g));
  auto entry = CacheManager::PrepareEntry(std::make_shared<const Graph>(
                                              std::move(g)),
                                          CachedQueryKind::kSubgraph,
                                          DynamicBitset(4), DynamicBitset(4),
                                          1.0);
  const CacheEntryId id =
      cache.shard(s).AdmitPrepared(std::move(entry), now).value();
  return {s, id};
}

TEST(ShardedCacheTest, ZeroShardCountClampsToOne) {
  ShardedCache cache(0, TotalOptions());
  EXPECT_EQ(cache.num_shards(), 1u);
  EXPECT_EQ(cache.ShardOfDigest(0xdeadbeef), 0u);
}

TEST(ShardedCacheTest, SingleShardKeepsTotalCapacities) {
  ShardedCache cache(1, TotalOptions());
  EXPECT_EQ(cache.shard(0).options().cache_capacity, 10u);
  EXPECT_EQ(cache.shard(0).options().window_capacity, 4u);
}

TEST(ShardedCacheTest, CapacitiesSplitCeilWithFloorOfOne) {
  ShardedCache cache(4, TotalOptions());
  for (std::size_t s = 0; s < 4; ++s) {
    EXPECT_EQ(cache.shard(s).options().cache_capacity, 3u);  // ceil(10/4)
    EXPECT_EQ(cache.shard(s).options().window_capacity, 1u);
  }
  ShardedCache many(64, TotalOptions());
  EXPECT_EQ(many.shard(63).options().cache_capacity, 1u);  // floor of 1
}

TEST(ShardedCacheTest, DigestRoutingIsStableAndInRange) {
  ShardedCache cache(8, TotalOptions());
  for (std::uint64_t d = 0; d < 100; ++d) {
    const std::size_t s = cache.ShardOfDigest(d * 0x9e3779b97f4a7c15ULL);
    EXPECT_LT(s, 8u);
    EXPECT_EQ(s, cache.ShardOfDigest(d * 0x9e3779b97f4a7c15ULL));
  }
}

TEST(ShardedCacheTest, AggregatesSumAcrossShards) {
  ShardedCache cache(4, TotalOptions());
  std::size_t touched = 0;
  for (std::size_t n = 2; n <= 9; ++n) {
    AdmitPath(cache, n, n);
    ++touched;
  }
  EXPECT_EQ(cache.resident(), touched);
  EXPECT_EQ(cache.AggregateStats().total_admissions, touched);
  std::size_t seen = 0;
  cache.ForEachEntry([&seen](const CachedQuery&) { ++seen; });
  EXPECT_EQ(seen, touched);
}

TEST(ShardedCacheTest, RestoreRoutesEntriesToTheirHomeShard) {
  ShardedCache cache(4, TotalOptions());
  for (std::size_t n = 2; n <= 9; ++n) AdmitPath(cache, n, n);
  std::vector<CachedQuery> exported = cache.ExportEntries();

  ShardedCache restored(4, TotalOptions());
  restored.RestoreEntries(std::move(exported));
  // Per-shard capacity truncation may trim a shard that drew more than
  // ceil(capacity / shards) entries; nothing beyond that is lost.
  EXPECT_LE(restored.resident(), cache.resident());
  EXPECT_GE(restored.resident(), cache.resident() - 2);
  for (std::size_t s = 0; s < restored.num_shards(); ++s) {
    EXPECT_LE(restored.shard(s).cache_size(),
              restored.shard(s).options().cache_capacity);
    restored.shard(s).ForEachEntry([&](const CachedQuery& e) {
      EXPECT_EQ(restored.ShardOfDigest(e.digest), s)
          << "entry restored into a foreign shard";
    });
  }
}

TEST(ShardedCacheTest, ClearPurgesEveryShard) {
  ShardedCache cache(4, TotalOptions());
  for (std::size_t n = 2; n <= 9; ++n) AdmitPath(cache, n, n);
  cache.Clear();
  EXPECT_EQ(cache.resident(), 0u);
  EXPECT_GE(cache.AggregateStats().total_cache_clears, 1u);
}

TEST(ShardedCacheTest, DrainScopeDetectsForeignShardLocks) {
  ShardedCache cache(4, TotalOptions());
  EXPECT_EQ(cache.lock_violations(), 0u);
  {
    ShardedCache::DrainScope scope(1);
    { const auto own = cache.LockExclusive(1); }
    EXPECT_EQ(cache.lock_violations(), 0u);  // own shard: fine
    { const auto foreign = cache.LockShared(2); }
    EXPECT_EQ(cache.lock_violations(), 1u);  // foreign shard: flagged
  }
  // Outside any drain scope, cross-shard locking is legitimate (read
  // phases and stop-the-world barriers take them all).
  { const auto all = cache.LockAllShared(); }
  EXPECT_EQ(cache.lock_violations(), 1u);
}

}  // namespace
}  // namespace gcp
