// Algorithm 2 truth table: for each touched dataset graph G_i the validity
// bit survives only in exactly two cases:
//   (UA-exclusive ops) ∧ valid ∧ (g ⊆ G_i cached)      — line 12
//   (UR-exclusive ops) ∧ valid ∧ (g ⊄ G_i cached)      — line 14
// and the indicator is extended with false bits for new dataset graphs.

#include "cache/cache_validator.hpp"

#include <gtest/gtest.h>

#include "../test_util.hpp"
#include "dataset/change_log.hpp"

namespace gcp {
namespace {

CachedQuery MakeEntry(std::size_t horizon, std::vector<std::size_t> answer,
                      std::vector<std::size_t> invalid = {}) {
  CachedQuery e;
  e.id = 1;
  e.query = std::make_shared<const Graph>(testing::MakePath({0, 1}));
  e.answer = DynamicBitset(horizon);
  for (const auto i : answer) e.answer.Set(i);
  e.valid = DynamicBitset(horizon, true);
  for (const auto i : invalid) e.valid.Set(i, false);
  return e;
}

ChangeCounters Counters(
    std::initializer_list<std::pair<ChangeType, GraphId>> ops) {
  ChangeLog log;
  for (const auto& [type, id] : ops) log.Append(type, id);
  return LogAnalyzer::Analyze(log.ExtractSince(0));
}

TEST(CacheValidatorTest, UaExclusivePreservesPositiveResult) {
  CachedQuery e = MakeEntry(4, {2});  // g ⊆ G2
  CacheValidator::RefreshEntry(e, Counters({{ChangeType::kEdgeAdd, 2}}), 4);
  EXPECT_TRUE(e.valid.Test(2));  // adding edges cannot break containment
}

TEST(CacheValidatorTest, UaInvalidatesNegativeResult) {
  CachedQuery e = MakeEntry(4, {2});  // g ⊄ G1
  CacheValidator::RefreshEntry(e, Counters({{ChangeType::kEdgeAdd, 1}}), 4);
  EXPECT_FALSE(e.valid.Test(1));  // new edge may create containment
  EXPECT_TRUE(e.valid.Test(0));   // untouched graphs keep validity
  EXPECT_TRUE(e.valid.Test(2));
  EXPECT_TRUE(e.valid.Test(3));
}

TEST(CacheValidatorTest, UrExclusivePreservesNegativeResult) {
  CachedQuery e = MakeEntry(4, {2});  // g ⊄ G0
  CacheValidator::RefreshEntry(e, Counters({{ChangeType::kEdgeRemove, 0}}), 4);
  EXPECT_TRUE(e.valid.Test(0));  // removing edges cannot create containment
}

TEST(CacheValidatorTest, UrInvalidatesPositiveResult) {
  CachedQuery e = MakeEntry(4, {2, 3});
  CacheValidator::RefreshEntry(e, Counters({{ChangeType::kEdgeRemove, 3}}), 4);
  EXPECT_FALSE(e.valid.Test(3));  // removed edge may break containment
  EXPECT_TRUE(e.valid.Test(2));
}

TEST(CacheValidatorTest, MixedUaUrInvalidatesEitherPolarity) {
  CachedQuery e = MakeEntry(4, {1});
  const ChangeCounters c = Counters(
      {{ChangeType::kEdgeAdd, 1}, {ChangeType::kEdgeRemove, 1},
       {ChangeType::kEdgeAdd, 2}, {ChangeType::kEdgeRemove, 2}});
  CacheValidator::RefreshEntry(e, c, 4);
  EXPECT_FALSE(e.valid.Test(1));  // positive result, mixed ops
  EXPECT_FALSE(e.valid.Test(2));  // negative result, mixed ops
}

TEST(CacheValidatorTest, DeleteInvalidatesBothPolarities) {
  CachedQuery e = MakeEntry(4, {1});
  const ChangeCounters c =
      Counters({{ChangeType::kDelete, 1}, {ChangeType::kDelete, 2}});
  CacheValidator::RefreshEntry(e, c, 4);
  EXPECT_FALSE(e.valid.Test(1));
  EXPECT_FALSE(e.valid.Test(2));
}

TEST(CacheValidatorTest, AddedGraphsGetFalseBits) {
  CachedQuery e = MakeEntry(3, {0});
  const ChangeCounters c =
      Counters({{ChangeType::kAdd, 3}, {ChangeType::kAdd, 4}});
  CacheValidator::RefreshEntry(e, c, 5);
  EXPECT_EQ(e.valid.size(), 5u);
  EXPECT_EQ(e.answer.size(), 5u);
  EXPECT_FALSE(e.valid.Test(3));
  EXPECT_FALSE(e.valid.Test(4));
  EXPECT_FALSE(e.answer.Test(3));
  EXPECT_TRUE(e.valid.Test(0));  // old knowledge intact
  EXPECT_TRUE(e.answer.Test(0));
}

TEST(CacheValidatorTest, InvalidBitsStayInvalid) {
  // A bit already turned off cannot be revived even by a "benign" op.
  CachedQuery e = MakeEntry(4, {2}, /*invalid=*/{2});
  CacheValidator::RefreshEntry(e, Counters({{ChangeType::kEdgeAdd, 2}}), 4);
  EXPECT_FALSE(e.valid.Test(2));
}

TEST(CacheValidatorTest, EmptyCountersOnlyExtend) {
  CachedQuery e = MakeEntry(2, {1});
  CacheValidator::RefreshEntry(e, ChangeCounters(), 6);
  EXPECT_EQ(e.valid.size(), 6u);
  EXPECT_TRUE(e.valid.Test(0));
  EXPECT_TRUE(e.valid.Test(1));
  for (std::size_t i = 2; i < 6; ++i) EXPECT_FALSE(e.valid.Test(i));
}

TEST(CacheValidatorTest, RepeatedUaOnPositiveStillValid) {
  CachedQuery e = MakeEntry(3, {1});
  const ChangeCounters c = Counters({{ChangeType::kEdgeAdd, 1},
                                     {ChangeType::kEdgeAdd, 1},
                                     {ChangeType::kEdgeAdd, 1}});
  CacheValidator::RefreshEntry(e, c, 3);
  EXPECT_TRUE(e.valid.Test(1));
}

TEST(CacheValidatorTest, UaThenDeleteInvalidatesDespiteAnswer) {
  CachedQuery e = MakeEntry(3, {1});
  const ChangeCounters c =
      Counters({{ChangeType::kEdgeAdd, 1}, {ChangeType::kDelete, 1}});
  CacheValidator::RefreshEntry(e, c, 3);
  EXPECT_FALSE(e.valid.Test(1));  // tc != uac because of the DEL
}

// --- Supergraph-query entries: the UA/UR polarity rules invert. ----------

CachedQuery MakeSuperEntry(std::size_t horizon,
                           std::vector<std::size_t> answer) {
  CachedQuery e = MakeEntry(horizon, std::move(answer));
  e.kind = CachedQueryKind::kSupergraph;
  return e;
}

TEST(CacheValidatorTest, SuperEntryUaInvalidatesPositiveResult) {
  // answer bit means G_i ⊆ g; adding an edge to G_i can break that.
  CachedQuery e = MakeSuperEntry(4, {2});
  CacheValidator::RefreshEntry(e, Counters({{ChangeType::kEdgeAdd, 2}}), 4);
  EXPECT_FALSE(e.valid.Test(2));
}

TEST(CacheValidatorTest, SuperEntryUaPreservesNegativeResult) {
  // G_i ⊄ g stays false when G_i only gains edges.
  CachedQuery e = MakeSuperEntry(4, {2});
  CacheValidator::RefreshEntry(e, Counters({{ChangeType::kEdgeAdd, 1}}), 4);
  EXPECT_TRUE(e.valid.Test(1));
}

TEST(CacheValidatorTest, SuperEntryUrPreservesPositiveResult) {
  // G_i ⊆ g survives edge removals from G_i.
  CachedQuery e = MakeSuperEntry(4, {2});
  CacheValidator::RefreshEntry(e, Counters({{ChangeType::kEdgeRemove, 2}}), 4);
  EXPECT_TRUE(e.valid.Test(2));
}

TEST(CacheValidatorTest, SuperEntryUrInvalidatesNegativeResult) {
  // Removing an edge from G_i can make it fit inside g.
  CachedQuery e = MakeSuperEntry(4, {2});
  CacheValidator::RefreshEntry(e, Counters({{ChangeType::kEdgeRemove, 0}}), 4);
  EXPECT_FALSE(e.valid.Test(0));
}

TEST(CacheValidatorTest, SuperEntryDeleteAndAddStillInvalidate) {
  CachedQuery e = MakeSuperEntry(3, {1});
  const ChangeCounters c =
      Counters({{ChangeType::kDelete, 1}, {ChangeType::kAdd, 3}});
  CacheValidator::RefreshEntry(e, c, 4);
  EXPECT_FALSE(e.valid.Test(1));
  EXPECT_FALSE(e.valid.Test(3));
}

TEST(CacheValidatorTest, SequentialRefreshesCompose) {
  // Figure 2 narrative: T2 = {ADD G4, UR G3}; T4 = {DEL G0, UA G1}.
  CachedQuery g_prime = MakeEntry(4, {2, 3});  // Answer = {G2, G3}
  // T2: ADD G4 + UR G3.
  CacheValidator::RefreshEntry(
      g_prime,
      Counters({{ChangeType::kAdd, 4}, {ChangeType::kEdgeRemove, 3}}), 5);
  EXPECT_TRUE(g_prime.valid.Test(0));
  EXPECT_TRUE(g_prime.valid.Test(1));
  EXPECT_TRUE(g_prime.valid.Test(2));
  EXPECT_FALSE(g_prime.valid.Test(3));  // UR faded positive result
  EXPECT_FALSE(g_prime.valid.Test(4));  // new graph unknown
  // T4: DEL G0 + UA G1.
  CacheValidator::RefreshEntry(
      g_prime,
      Counters({{ChangeType::kDelete, 0}, {ChangeType::kEdgeAdd, 1}}), 5);
  EXPECT_FALSE(g_prime.valid.Test(0));  // deleted
  EXPECT_FALSE(g_prime.valid.Test(1));  // UA faded negative result
  EXPECT_TRUE(g_prime.valid.Test(2));   // survives everything
}

}  // namespace
}  // namespace gcp
