#include "graph/features.hpp"

#include <gtest/gtest.h>

#include "../test_util.hpp"
#include "graph/generators.hpp"
#include "match/matcher.hpp"
#include "workload/query_gen.hpp"

namespace gcp {
namespace {

using testing::MakeCycle;
using testing::MakeGraph;
using testing::MakePath;
using testing::MakeStar;
using testing::MakeTriangle;

TEST(FeaturesTest, ExtractCountsBasics) {
  const Graph g = MakeTriangle(1, 1, 2);
  const GraphFeatures f = GraphFeatures::Extract(g);
  EXPECT_EQ(f.num_vertices, 3u);
  EXPECT_EQ(f.num_edges, 3u);
  EXPECT_EQ(f.max_degree, 2u);
  EXPECT_EQ(f.label_counts.at(1), 2u);
  EXPECT_EQ(f.label_counts.at(2), 1u);
  EXPECT_EQ(f.edge_label_counts.at({1, 1}), 1u);
  EXPECT_EQ(f.edge_label_counts.at({1, 2}), 2u);
}

TEST(FeaturesTest, LabelDegreesSortedDescending) {
  const Graph g = MakeStar({5, 5, 5, 5});  // center degree 3, leaves 1
  const GraphFeatures f = GraphFeatures::Extract(g);
  EXPECT_EQ(f.label_degrees.at(5), (std::vector<std::uint32_t>{3, 1, 1, 1}));
}

TEST(FeaturesTest, EmptyGraphFeatures) {
  const GraphFeatures f = GraphFeatures::Extract(Graph());
  EXPECT_EQ(f.num_vertices, 0u);
  EXPECT_EQ(f.num_edges, 0u);
  EXPECT_TRUE(f.label_counts.empty());
  // The empty graph could be a subgraph of anything.
  EXPECT_TRUE(f.CouldBeSubgraphOf(GraphFeatures::Extract(MakePath({0, 1}))));
}

TEST(FeaturesTest, SubgraphPassesFilter) {
  const Graph big = MakeCycle({1, 2, 1, 2, 1, 2});
  const Graph small = MakePath({1, 2, 1});
  EXPECT_TRUE(GraphFeatures::Extract(small).CouldBeSubgraphOf(
      GraphFeatures::Extract(big)));
}

TEST(FeaturesTest, RejectsByVertexAndEdgeCount) {
  const GraphFeatures small = GraphFeatures::Extract(MakePath({0, 0}));
  const GraphFeatures big = GraphFeatures::Extract(MakePath({0, 0, 0}));
  EXPECT_FALSE(big.CouldBeSubgraphOf(small));
}

TEST(FeaturesTest, RejectsByLabelCount) {
  // Two '7' vertices cannot inject into one '7' vertex.
  const GraphFeatures q = GraphFeatures::Extract(MakePath({7, 0, 7}));
  const GraphFeatures t = GraphFeatures::Extract(MakePath({7, 0, 0, 0}));
  EXPECT_FALSE(q.CouldBeSubgraphOf(t));
}

TEST(FeaturesTest, RejectsByMissingLabel) {
  const GraphFeatures q = GraphFeatures::Extract(MakePath({9}));
  const GraphFeatures t = GraphFeatures::Extract(MakePath({1, 2, 3}));
  EXPECT_FALSE(q.CouldBeSubgraphOf(t));
}

TEST(FeaturesTest, RejectsByEdgeLabelPair) {
  // Query needs a (1,2) edge; target has labels 1 and 2 but never adjacent.
  const Graph q = MakePath({1, 2});
  const Graph t = MakeGraph({1, 0, 2}, {{0, 1}, {1, 2}});
  EXPECT_FALSE(GraphFeatures::Extract(q).CouldBeSubgraphOf(
      GraphFeatures::Extract(t)));
}

TEST(FeaturesTest, RejectsByDegreeSequence) {
  // Star center of degree 3 cannot map into a path (max degree 2), even
  // though label/edge-pair counts alone would pass.
  const Graph q = MakeStar({0, 0, 0, 0});
  const Graph t = MakePath({0, 0, 0, 0, 0});
  EXPECT_FALSE(GraphFeatures::Extract(q).CouldBeSubgraphOf(
      GraphFeatures::Extract(t)));
}

TEST(FeaturesTest, FeatureEqualityForIsomorphicGraphs) {
  Rng rng(5);
  const Graph g = RandomConnectedGraph(rng, 12, 5, 3);
  const Graph p = RandomlyPermuted(rng, g);
  EXPECT_EQ(GraphFeatures::Extract(g), GraphFeatures::Extract(p));
}

// Soundness sweep: if matcher says pattern ⊆ target, the filter must agree
// (never a false drop). Uses BFS-extracted queries, which are true
// subgraphs by construction, plus random pairs for the negative density.
class FeatureSoundnessTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FeatureSoundnessTest, FilterNeverDropsTrueContainment) {
  Rng rng(GetParam());
  const auto matcher = MakeMatcher(MatcherKind::kVf2);
  for (int round = 0; round < 20; ++round) {
    const Graph target = RandomConnectedGraph(rng, 14, 6, 3);
    const Graph query = ExtractBfsQuery(
        target, static_cast<VertexId>(rng.UniformBelow(14)), 5);
    ASSERT_TRUE(matcher->Contains(query, target));
    EXPECT_TRUE(GraphFeatures::Extract(query).CouldBeSubgraphOf(
        GraphFeatures::Extract(target)));
  }
  for (int round = 0; round < 30; ++round) {
    const Graph a = RandomConnectedGraph(rng, 8, 3, 3);
    const Graph b = RandomConnectedGraph(rng, 10, 4, 3);
    if (matcher->Contains(a, b)) {
      EXPECT_TRUE(GraphFeatures::Extract(a).CouldBeSubgraphOf(
          GraphFeatures::Extract(b)));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FeatureSoundnessTest,
                         ::testing::Values(11, 22, 33, 44, 55));

}  // namespace
}  // namespace gcp
