#include "graph/graph.hpp"

#include <gtest/gtest.h>

#include "../test_util.hpp"

namespace gcp {
namespace {

using testing::MakeCycle;
using testing::MakeGraph;
using testing::MakePath;

TEST(GraphTest, EmptyGraph) {
  Graph g;
  EXPECT_EQ(g.NumVertices(), 0u);
  EXPECT_EQ(g.NumEdges(), 0u);
  EXPECT_TRUE(g.IsConnected());  // by convention
  EXPECT_TRUE(g.Edges().empty());
}

TEST(GraphTest, AddVertexAssignsSequentialIds) {
  Graph g;
  EXPECT_EQ(g.AddVertex(10), 0u);
  EXPECT_EQ(g.AddVertex(20), 1u);
  EXPECT_EQ(g.AddVertex(10), 2u);
  EXPECT_EQ(g.NumVertices(), 3u);
  EXPECT_EQ(g.label(0), 10u);
  EXPECT_EQ(g.label(1), 20u);
  EXPECT_EQ(g.label(2), 10u);
}

TEST(GraphTest, AddEdgeMaintainsSortedAdjacency) {
  Graph g;
  for (int i = 0; i < 5; ++i) g.AddVertex(0);
  ASSERT_TRUE(g.AddEdge(0, 4).ok());
  ASSERT_TRUE(g.AddEdge(0, 2).ok());
  ASSERT_TRUE(g.AddEdge(0, 3).ok());
  EXPECT_EQ(g.neighbors(0), (std::vector<VertexId>{2, 3, 4}));
  EXPECT_EQ(g.degree(0), 3u);
  EXPECT_EQ(g.degree(2), 1u);
  EXPECT_EQ(g.NumEdges(), 3u);
}

TEST(GraphTest, AddEdgeRejectsSelfLoop) {
  Graph g;
  g.AddVertex(0);
  const Status s = g.AddEdge(0, 0);
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(g.NumEdges(), 0u);
}

TEST(GraphTest, AddEdgeRejectsDuplicate) {
  Graph g;
  g.AddVertex(0);
  g.AddVertex(1);
  ASSERT_TRUE(g.AddEdge(0, 1).ok());
  EXPECT_EQ(g.AddEdge(0, 1).code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(g.AddEdge(1, 0).code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(g.NumEdges(), 1u);
}

TEST(GraphTest, AddEdgeRejectsOutOfRange) {
  Graph g;
  g.AddVertex(0);
  EXPECT_EQ(g.AddEdge(0, 5).code(), StatusCode::kOutOfRange);
  EXPECT_EQ(g.AddEdge(5, 0).code(), StatusCode::kOutOfRange);
}

TEST(GraphTest, RemoveEdgeBothDirections) {
  Graph g = MakePath({0, 1, 2});
  ASSERT_TRUE(g.RemoveEdge(1, 0).ok());  // reversed endpoints
  EXPECT_EQ(g.NumEdges(), 1u);
  EXPECT_FALSE(g.HasEdge(0, 1));
  EXPECT_FALSE(g.HasEdge(1, 0));
  EXPECT_TRUE(g.HasEdge(1, 2));
}

TEST(GraphTest, RemoveEdgeAbsentFails) {
  Graph g = MakePath({0, 1, 2});
  EXPECT_EQ(g.RemoveEdge(0, 2).code(), StatusCode::kNotFound);
  EXPECT_EQ(g.RemoveEdge(0, 9).code(), StatusCode::kOutOfRange);
  EXPECT_EQ(g.NumEdges(), 2u);
}

TEST(GraphTest, HasEdgeSymmetric) {
  Graph g = MakeCycle({0, 1, 2, 3});
  EXPECT_TRUE(g.HasEdge(3, 0));
  EXPECT_TRUE(g.HasEdge(0, 3));
  EXPECT_FALSE(g.HasEdge(0, 2));
  EXPECT_FALSE(g.HasEdge(0, 0));
}

TEST(GraphTest, EdgesListsSortedUVPairs) {
  Graph g = MakeCycle({5, 6, 7});
  const auto edges = g.Edges();
  ASSERT_EQ(edges.size(), 3u);
  EXPECT_EQ(edges[0], (std::pair<VertexId, VertexId>{0, 1}));
  EXPECT_EQ(edges[1], (std::pair<VertexId, VertexId>{0, 2}));
  EXPECT_EQ(edges[2], (std::pair<VertexId, VertexId>{1, 2}));
}

TEST(GraphTest, CreateFromListsValidatesEdges) {
  auto ok = Graph::Create({1, 2, 3}, {{0, 1}, {1, 2}});
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(ok.value().NumEdges(), 2u);
  auto self_loop = Graph::Create({1}, {{0, 0}});
  EXPECT_FALSE(self_loop.ok());
  auto dup = Graph::Create({1, 2}, {{0, 1}, {1, 0}});
  EXPECT_FALSE(dup.ok());
  auto range = Graph::Create({1, 2}, {{0, 5}});
  EXPECT_FALSE(range.ok());
}

TEST(GraphTest, ConnectivityDetection) {
  EXPECT_TRUE(MakePath({0, 1, 2, 3}).IsConnected());
  Graph disconnected;
  disconnected.AddVertex(0);
  disconnected.AddVertex(1);
  disconnected.AddVertex(2);
  disconnected.AddEdge(0, 1).ok();
  EXPECT_FALSE(disconnected.IsConnected());
  Graph single;
  single.AddVertex(9);
  EXPECT_TRUE(single.IsConnected());
}

TEST(GraphTest, NonEdgesComplementsEdges) {
  Graph g = MakePath({0, 1, 2, 3});  // 3 edges of C(4,2)=6 pairs
  const auto non = g.NonEdges();
  EXPECT_EQ(non.size(), 3u);
  for (const auto& [u, v] : non) {
    EXPECT_FALSE(g.HasEdge(u, v));
    EXPECT_LT(u, v);
  }
  EXPECT_TRUE(testing::MakeClique(4, 0).NonEdges().empty());
}

TEST(GraphTest, EqualityIsStructuralAndLabelled) {
  const Graph a = MakePath({0, 1, 2});
  const Graph b = MakePath({0, 1, 2});
  EXPECT_EQ(a, b);
  const Graph c = MakePath({0, 1, 3});
  EXPECT_FALSE(a == c);
  Graph d = MakePath({0, 1, 2});
  d.RemoveEdge(0, 1).ok();
  EXPECT_FALSE(a == d);
}

TEST(GraphTest, MutationRoundTripRestoresEquality) {
  Graph g = MakeCycle({1, 2, 3, 4});
  const Graph snapshot = g;
  ASSERT_TRUE(g.RemoveEdge(0, 1).ok());
  EXPECT_FALSE(g == snapshot);
  ASSERT_TRUE(g.AddEdge(0, 1).ok());
  EXPECT_EQ(g, snapshot);
}

TEST(GraphTest, ToStringMentionsShape) {
  const Graph g = MakePath({7, 8});
  const std::string s = g.ToString();
  EXPECT_NE(s.find("n=2"), std::string::npos);
  EXPECT_NE(s.find("m=1"), std::string::npos);
}

}  // namespace
}  // namespace gcp
