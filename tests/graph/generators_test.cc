#include "graph/generators.hpp"

#include <gtest/gtest.h>

#include <set>

namespace gcp {
namespace {

TEST(GeneratorsTest, RandomConnectedGraphIsConnected) {
  Rng rng(1);
  for (int i = 0; i < 30; ++i) {
    const Graph g = RandomConnectedGraph(rng, 15, 5, 4);
    EXPECT_EQ(g.NumVertices(), 15u);
    EXPECT_TRUE(g.IsConnected());
    EXPECT_GE(g.NumEdges(), 14u);  // at least the spanning tree
  }
}

TEST(GeneratorsTest, RandomConnectedGraphEdgeBudget) {
  Rng rng(2);
  const Graph g = RandomConnectedGraph(rng, 10, 6, 3);
  EXPECT_EQ(g.NumEdges(), 9u + 6u);
}

TEST(GeneratorsTest, RandomConnectedGraphCapsAtComplete) {
  Rng rng(3);
  const Graph g = RandomConnectedGraph(rng, 5, 1000, 2);
  EXPECT_EQ(g.NumEdges(), 10u);  // K5
}

TEST(GeneratorsTest, RandomConnectedGraphDegenerateSizes) {
  Rng rng(4);
  EXPECT_EQ(RandomConnectedGraph(rng, 0, 3, 2).NumVertices(), 0u);
  const Graph one = RandomConnectedGraph(rng, 1, 3, 2);
  EXPECT_EQ(one.NumVertices(), 1u);
  EXPECT_EQ(one.NumEdges(), 0u);
}

TEST(GeneratorsTest, LabelsWithinUniverse) {
  Rng rng(5);
  const Graph g = RandomConnectedGraph(rng, 50, 20, 7);
  for (VertexId v = 0; v < g.NumVertices(); ++v) {
    EXPECT_LT(g.label(v), 7u);
  }
}

TEST(GeneratorsTest, RandomGraphEdgeProbabilityExtremes) {
  Rng rng(6);
  const Graph empty = RandomGraph(rng, 12, 0.0, 3);
  EXPECT_EQ(empty.NumEdges(), 0u);
  const Graph full = RandomGraph(rng, 12, 1.0, 3);
  EXPECT_EQ(full.NumEdges(), 66u);
}

TEST(GeneratorsTest, RandomGraphDensityRoughlyMatches) {
  Rng rng(7);
  std::size_t total = 0;
  const int rounds = 40;
  for (int i = 0; i < rounds; ++i) {
    total += RandomGraph(rng, 20, 0.3, 2).NumEdges();
  }
  const double avg = static_cast<double>(total) / rounds;
  EXPECT_NEAR(avg, 0.3 * 190.0, 8.0);
}

TEST(GeneratorsTest, RelabelPreservesStructure) {
  Rng rng(8);
  Graph g = RandomConnectedGraph(rng, 10, 3, 2);
  const auto edges_before = g.Edges();
  RelabelUniform(rng, g, 5);
  EXPECT_EQ(g.Edges(), edges_before);
  for (VertexId v = 0; v < g.NumVertices(); ++v) EXPECT_LT(g.label(v), 5u);
}

TEST(GeneratorsTest, PermutedGraphPreservesDegreeMultiset) {
  Rng rng(9);
  const Graph g = RandomConnectedGraph(rng, 12, 5, 3);
  const Graph p = RandomlyPermuted(rng, g);
  ASSERT_EQ(p.NumVertices(), g.NumVertices());
  ASSERT_EQ(p.NumEdges(), g.NumEdges());
  std::multiset<std::pair<Label, std::size_t>> a, b;
  for (VertexId v = 0; v < g.NumVertices(); ++v) {
    a.insert({g.label(v), g.degree(v)});
    b.insert({p.label(v), p.degree(v)});
  }
  EXPECT_EQ(a, b);
}

TEST(GeneratorsTest, DeterministicGivenSeed) {
  Rng a(42), b(42);
  const Graph ga = RandomConnectedGraph(a, 10, 4, 3);
  const Graph gb = RandomConnectedGraph(b, 10, 4, 3);
  EXPECT_EQ(ga, gb);
}

}  // namespace
}  // namespace gcp
