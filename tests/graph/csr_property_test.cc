// Property suite for the CSR graph representation: on random graphs (bulk
// Create builds and incremental mutation sequences alike) the CSR
// accessors must agree with an independently maintained legacy adjacency
// model — neighbour runs, label-sorted runs, per-vertex signatures, the
// graph-level label histogram and the degree sequence — and the SWAR
// signature dominance test must agree with a per-nibble reference.

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <vector>

#include "common/rng.hpp"
#include "graph/graph.hpp"

namespace gcp {
namespace {

// Legacy vector-of-vectors adjacency, maintained alongside the Graph.
struct LegacyAdjacency {
  std::vector<Label> labels;
  std::vector<std::vector<VertexId>> adj;  // id-sorted

  void AddVertex(Label l) {
    labels.push_back(l);
    adj.emplace_back();
  }
  void AddEdge(VertexId u, VertexId v) {
    adj[u].insert(std::lower_bound(adj[u].begin(), adj[u].end(), v), v);
    adj[v].insert(std::lower_bound(adj[v].begin(), adj[v].end(), u), u);
  }
  void RemoveEdge(VertexId u, VertexId v) {
    adj[u].erase(std::find(adj[u].begin(), adj[u].end(), v));
    adj[v].erase(std::find(adj[v].begin(), adj[v].end(), u));
  }
  bool HasEdge(VertexId u, VertexId v) const {
    return std::binary_search(adj[u].begin(), adj[u].end(), v);
  }
};

// Reference vertex signature: 16 nibble buckets (label & 15), saturating
// at 15 — mirrors the documented layout independently of the CSR code.
std::uint64_t ReferenceSignature(const LegacyAdjacency& m, VertexId v) {
  std::uint64_t sig = 0;
  for (const VertexId w : m.adj[v]) {
    const std::size_t bucket = m.labels[w] & 15u;
    const std::uint64_t nibble = (sig >> (4 * bucket)) & 0xFULL;
    if (nibble < 0xF) sig += 1ULL << (4 * bucket);
  }
  return sig;
}

void ExpectCsrMatchesLegacy(const Graph& g, const LegacyAdjacency& m) {
  ASSERT_EQ(g.NumVertices(), m.labels.size());
  std::size_t edges = 0;
  std::map<Label, std::uint32_t> label_counts;
  std::vector<std::uint32_t> degrees;
  for (VertexId v = 0; v < g.NumVertices(); ++v) {
    ++label_counts[m.labels[v]];
    degrees.push_back(static_cast<std::uint32_t>(m.adj[v].size()));
    edges += m.adj[v].size();

    // Primary run: id-sorted neighbours.
    EXPECT_EQ(g.neighbors(v), m.adj[v]) << "vertex " << v;
    EXPECT_EQ(g.degree(v), m.adj[v].size());

    // Label-sorted run: NeighborsWithLabel(v, l) is exactly the id-sorted
    // subset of neighbours labelled l, for every label that occurs (and
    // empty for one that does not).
    std::map<Label, std::vector<VertexId>> by_label;
    for (const VertexId w : m.adj[v]) by_label[m.labels[w]].push_back(w);
    std::size_t covered = 0;
    for (const auto& [l, expected] : by_label) {
      EXPECT_EQ(g.NeighborsWithLabel(v, l), expected)
          << "vertex " << v << " label " << l;
      covered += expected.size();
    }
    EXPECT_EQ(covered, g.degree(v));
    EXPECT_TRUE(g.NeighborsWithLabel(v, 9999).empty());

    EXPECT_EQ(g.vertex_signature(v), ReferenceSignature(m, v))
        << "vertex " << v;

    for (VertexId w = 0; w < g.NumVertices(); ++w) {
      EXPECT_EQ(g.HasEdge(v, w), v != w && m.HasEdge(v, w));
    }
  }
  EXPECT_EQ(g.NumEdges(), edges / 2);

  LabelHistogram expected_hist(label_counts.begin(), label_counts.end());
  EXPECT_EQ(g.label_histogram(), expected_hist);

  std::sort(degrees.begin(), degrees.end(), std::greater<>());
  EXPECT_EQ(g.degree_sequence(), degrees);
}

class CsrPropertyTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CsrPropertyTest, RandomMutationSequenceMatchesLegacyAdjacency) {
  Rng rng(GetParam());
  Graph g;
  LegacyAdjacency m;
  for (int step = 0; step < 400; ++step) {
    const std::size_t n = g.NumVertices();
    switch (rng.UniformBelow(3)) {
      case 0: {
        const Label l = static_cast<Label>(rng.UniformBelow(40));
        g.AddVertex(l);
        m.AddVertex(l);
        break;
      }
      case 1: {
        if (n < 2) break;
        const auto u = static_cast<VertexId>(rng.UniformBelow(n));
        const auto v = static_cast<VertexId>(rng.UniformBelow(n));
        if (u == v || m.HasEdge(u, v)) break;
        ASSERT_TRUE(g.AddEdge(u, v).ok());
        m.AddEdge(u, v);
        break;
      }
      default: {
        if (n < 2) break;
        const auto u = static_cast<VertexId>(rng.UniformBelow(n));
        if (m.adj[u].empty()) break;
        const VertexId v = m.adj[u][rng.UniformBelow(m.adj[u].size())];
        ASSERT_TRUE(g.RemoveEdge(u, v).ok());
        m.RemoveEdge(u, v);
        break;
      }
    }
    if (step % 25 == 0) ExpectCsrMatchesLegacy(g, m);
  }
  ExpectCsrMatchesLegacy(g, m);
}

TEST_P(CsrPropertyTest, BulkCreateMatchesIncrementalBuild) {
  Rng rng(GetParam() + 77);
  for (int round = 0; round < 20; ++round) {
    const std::size_t n = 1 + rng.UniformBelow(25);
    std::vector<Label> labels;
    for (std::size_t i = 0; i < n; ++i) {
      labels.push_back(static_cast<Label>(rng.UniformBelow(6)));
    }
    std::vector<std::pair<VertexId, VertexId>> edges;
    for (VertexId u = 0; u < n; ++u) {
      for (VertexId v = u + 1; v < n; ++v) {
        if (rng.UniformBelow(4) == 0) edges.emplace_back(u, v);
      }
    }
    auto bulk = Graph::Create(labels, edges);
    ASSERT_TRUE(bulk.ok());

    Graph incremental;
    LegacyAdjacency m;
    for (const Label l : labels) {
      incremental.AddVertex(l);
      m.AddVertex(l);
    }
    for (const auto& [u, v] : edges) {
      ASSERT_TRUE(incremental.AddEdge(u, v).ok());
      m.AddEdge(u, v);
    }
    EXPECT_EQ(bulk.value(), incremental);
    ExpectCsrMatchesLegacy(bulk.value(), m);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CsrPropertyTest,
                         ::testing::Values(31001, 31002, 31003, 31004));

// SWAR nibble dominance vs a per-nibble reference, over random and
// adversarial (saturated / near-boundary) signature pairs.
TEST(SignatureDominatesTest, AgreesWithPerNibbleReference) {
  auto reference = [](std::uint64_t sub, std::uint64_t super) {
    for (int b = 0; b < 16; ++b) {
      if (((sub >> (4 * b)) & 0xF) > ((super >> (4 * b)) & 0xF)) return false;
    }
    return true;
  };
  Rng rng(424242);
  for (int i = 0; i < 20000; ++i) {
    std::uint64_t a = rng.Next();
    std::uint64_t b = rng.Next();
    // Mix in adversarial patterns: saturated nibbles and equal values.
    switch (rng.UniformBelow(5)) {
      case 0: a = b; break;
      case 1: a |= 0xF0F0F0F0F0F0F0F0ULL; break;
      case 2: b |= 0x0F0F0F0F0F0F0F0FULL; break;
      case 3: b = a | (1ULL << (4 * rng.UniformBelow(16))); break;
      default: break;
    }
    EXPECT_EQ(SignatureDominates(a, b), reference(a, b))
        << std::hex << a << " vs " << b;
  }
  EXPECT_TRUE(SignatureDominates(0, 0));
  EXPECT_TRUE(SignatureDominates(0, ~0ULL));
  EXPECT_FALSE(SignatureDominates(~0ULL, 0));
  EXPECT_TRUE(SignatureDominates(~0ULL, ~0ULL));
}

}  // namespace
}  // namespace gcp
