#include "graph/canonical.hpp"

#include <gtest/gtest.h>

#include <set>

#include "../test_util.hpp"
#include "graph/generators.hpp"

namespace gcp {
namespace {

using testing::MakeCycle;
using testing::MakePath;
using testing::MakeStar;

TEST(CanonicalTest, DigestInvariantUnderPermutation) {
  Rng rng(3);
  for (int i = 0; i < 50; ++i) {
    const Graph g = RandomConnectedGraph(rng, 10, 4, 3);
    const Graph p = RandomlyPermuted(rng, g);
    EXPECT_EQ(WlDigest(g), WlDigest(p)) << g.ToString();
  }
}

TEST(CanonicalTest, DigestSensitiveToLabels) {
  const Graph a = MakePath({1, 2, 3});
  const Graph b = MakePath({1, 2, 4});
  EXPECT_NE(WlDigest(a), WlDigest(b));
}

TEST(CanonicalTest, DigestSensitiveToStructure) {
  // Same label multiset and size, different shape.
  const Graph path = MakePath({0, 0, 0, 0});  // P4
  const Graph star = MakeStar({0, 0, 0, 0});  // K1,3
  EXPECT_NE(WlDigest(path), WlDigest(star));
}

TEST(CanonicalTest, DistinguishesCycleLengths) {
  std::set<std::uint64_t> digests;
  for (std::size_t n = 3; n <= 8; ++n) {
    digests.insert(WlDigest(MakeCycle(std::vector<Label>(n, 0))));
  }
  EXPECT_EQ(digests.size(), 6u);
}

TEST(CanonicalTest, EmptyAndSingletonStable) {
  EXPECT_EQ(WlDigest(Graph()), WlDigest(Graph()));
  EXPECT_EQ(WlDigest(testing::MakeSingleton(4)),
            WlDigest(testing::MakeSingleton(4)));
  EXPECT_NE(WlDigest(testing::MakeSingleton(4)),
            WlDigest(testing::MakeSingleton(5)));
}

TEST(CanonicalTest, MaybeIsomorphicAcceptsIsomorphs) {
  Rng rng(17);
  for (int i = 0; i < 30; ++i) {
    const Graph g = RandomConnectedGraph(rng, 12, 6, 4);
    const Graph p = RandomlyPermuted(rng, g);
    EXPECT_TRUE(MaybeIsomorphic(g, p));
  }
}

TEST(CanonicalTest, MaybeIsomorphicRejectsDifferentSizes) {
  EXPECT_FALSE(MaybeIsomorphic(MakePath({0, 0}), MakePath({0, 0, 0})));
  Graph a = MakeCycle({0, 0, 0, 0});
  Graph b = a;
  b.RemoveEdge(0, 1).ok();
  EXPECT_FALSE(MaybeIsomorphic(a, b));
}

TEST(CanonicalTest, RareCollisionsOnRandomCorpus) {
  // Digests are hashes, not canonical forms; still, a small random corpus
  // of structurally distinct graphs should be collision-free.
  Rng rng(23);
  std::set<std::uint64_t> digests;
  int count = 0;
  for (int n = 4; n <= 13; ++n) {
    for (int extra = 0; extra < 4; ++extra) {
      digests.insert(WlDigest(RandomConnectedGraph(rng, n, extra, 4)));
      ++count;
    }
  }
  EXPECT_EQ(digests.size(), static_cast<std::size_t>(count));
}

}  // namespace
}  // namespace gcp
