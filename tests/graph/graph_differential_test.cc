// Differential fuzz of Graph mutations against an adjacency-matrix
// reference model: dataset graphs are mutated in place by UA/UR
// throughout a GC+ run, so AddEdge/RemoveEdge bookkeeping (sorted
// adjacency, edge counts, HasEdge symmetry) is validated against an
// independent O(n²) model under random operation sequences.

#include <gtest/gtest.h>

#include <vector>

#include "common/rng.hpp"
#include "graph/graph.hpp"

namespace gcp {
namespace {

class MatrixModel {
 public:
  void AddVertex() {
    const std::size_t n = adj_.size() + 1;
    for (auto& row : adj_) row.resize(n, false);
    adj_.emplace_back(n, false);
  }
  bool AddEdge(std::size_t u, std::size_t v) {
    if (u >= adj_.size() || v >= adj_.size() || u == v || adj_[u][v]) {
      return false;
    }
    adj_[u][v] = adj_[v][u] = true;
    ++edges_;
    return true;
  }
  bool RemoveEdge(std::size_t u, std::size_t v) {
    if (u >= adj_.size() || v >= adj_.size() || !adj_[u][v]) return false;
    adj_[u][v] = adj_[v][u] = false;
    --edges_;
    return true;
  }
  bool HasEdge(std::size_t u, std::size_t v) const {
    return u < adj_.size() && v < adj_.size() && u != v && adj_[u][v];
  }
  std::size_t degree(std::size_t v) const {
    std::size_t d = 0;
    for (const bool x : adj_[v]) d += x ? 1 : 0;
    return d;
  }
  std::size_t size() const { return adj_.size(); }
  std::size_t edges() const { return edges_; }

 private:
  std::vector<std::vector<bool>> adj_;
  std::size_t edges_ = 0;
};

void ExpectAgree(const Graph& g, const MatrixModel& m) {
  ASSERT_EQ(g.NumVertices(), m.size());
  ASSERT_EQ(g.NumEdges(), m.edges());
  for (VertexId u = 0; u < g.NumVertices(); ++u) {
    ASSERT_EQ(g.degree(u), m.degree(u)) << "vertex " << u;
    // Sorted adjacency invariant.
    const auto& neigh = g.neighbors(u);
    for (std::size_t i = 1; i < neigh.size(); ++i) {
      ASSERT_LT(neigh[i - 1], neigh[i]);
    }
    for (VertexId v = 0; v < g.NumVertices(); ++v) {
      ASSERT_EQ(g.HasEdge(u, v), m.HasEdge(u, v))
          << "edge (" << u << "," << v << ")";
    }
  }
  // Edges() listing agrees with the matrix, each pair once with u < v.
  std::size_t listed = 0;
  for (const auto& [u, v] : g.Edges()) {
    ASSERT_LT(u, v);
    ASSERT_TRUE(m.HasEdge(u, v));
    ++listed;
  }
  ASSERT_EQ(listed, m.edges());
}

class GraphDifferentialTest : public ::testing::TestWithParam<std::uint64_t> {
};

TEST_P(GraphDifferentialTest, RandomMutationSequenceAgrees) {
  Rng rng(GetParam());
  Graph g;
  MatrixModel m;
  for (int step = 0; step < 300; ++step) {
    const std::size_t n = g.NumVertices();
    switch (rng.UniformBelow(4)) {
      case 0: {
        g.AddVertex(static_cast<Label>(rng.UniformBelow(4)));
        m.AddVertex();
        break;
      }
      case 1: {
        if (n < 2) break;
        const auto u = static_cast<VertexId>(rng.UniformBelow(n));
        const auto v = static_cast<VertexId>(rng.UniformBelow(n));
        const bool expect = m.AddEdge(u, v);
        ASSERT_EQ(g.AddEdge(u, v).ok(), expect);
        break;
      }
      case 2: {
        if (n < 2) break;
        const auto u = static_cast<VertexId>(rng.UniformBelow(n));
        const auto v = static_cast<VertexId>(rng.UniformBelow(n));
        const bool expect = m.RemoveEdge(u, v);
        ASSERT_EQ(g.RemoveEdge(u, v).ok(), expect);
        break;
      }
      default: {
        // Out-of-range / self-loop attempts must fail on both.
        if (n == 0) break;
        const auto u = static_cast<VertexId>(rng.UniformBelow(n));
        ASSERT_FALSE(g.AddEdge(u, u).ok());
        ASSERT_FALSE(g.AddEdge(u, static_cast<VertexId>(n + 3)).ok());
        ASSERT_FALSE(g.RemoveEdge(static_cast<VertexId>(n + 3), u).ok());
        break;
      }
    }
    if (step % 10 == 0) ExpectAgree(g, m);
  }
  ExpectAgree(g, m);
}

INSTANTIATE_TEST_SUITE_P(Seeds, GraphDifferentialTest,
                         ::testing::Values(2001, 2002, 2003, 2004));

}  // namespace
}  // namespace gcp
