#include "graph/graph_io.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <sstream>

#include "../test_util.hpp"
#include "graph/canonical.hpp"
#include "graph/generators.hpp"

namespace gcp {
namespace {

using testing::MakeCycle;
using testing::MakePath;

TEST(GraphIoTest, RoundTripSingleGraph) {
  const Graph g = MakeCycle({3, 1, 4, 1});
  auto parsed = GraphFromGSpan(GraphToGSpan(g));
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.value(), g);
}

TEST(GraphIoTest, RoundTripMultipleGraphs) {
  std::vector<Graph> graphs{MakePath({0, 1}), MakeCycle({2, 2, 2}),
                            testing::MakeSingleton(9)};
  std::ostringstream os;
  WriteGraphs(os, graphs);
  std::istringstream is(os.str());
  auto parsed = ReadGraphs(is);
  ASSERT_TRUE(parsed.ok());
  ASSERT_EQ(parsed.value().size(), 3u);
  for (std::size_t i = 0; i < graphs.size(); ++i) {
    EXPECT_EQ(parsed.value()[i], graphs[i]) << "graph " << i;
  }
}

TEST(GraphIoTest, ParsesCanonicalGSpanText) {
  const std::string text =
      "t # 0\n"
      "v 0 6\n"
      "v 1 8\n"
      "v 2 6\n"
      "e 0 1\n"
      "e 1 2\n";
  auto g = GraphFromGSpan(text);
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(g.value().NumVertices(), 3u);
  EXPECT_EQ(g.value().NumEdges(), 2u);
  EXPECT_EQ(g.value().label(1), 8u);
}

TEST(GraphIoTest, IgnoresEdgeLabelsAndComments) {
  const std::string text =
      "# AIDS-style file\n"
      "t # 0\n"
      "v 0 6\n"
      "v 1 8\n"
      "e 0 1 2\n";  // trailing edge label 2 ignored
  auto g = GraphFromGSpan(text);
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(g.value().NumEdges(), 1u);
}

TEST(GraphIoTest, EmptyInputYieldsNoGraphs) {
  std::istringstream is("");
  auto parsed = ReadGraphs(is);
  ASSERT_TRUE(parsed.ok());
  EXPECT_TRUE(parsed.value().empty());
}

TEST(GraphIoTest, RejectsVertexBeforeTransaction) {
  std::istringstream is("v 0 1\n");
  EXPECT_EQ(ReadGraphs(is).status().code(), StatusCode::kCorruption);
}

TEST(GraphIoTest, RejectsNonDenseVertexIds) {
  std::istringstream is("t # 0\nv 1 5\n");
  EXPECT_EQ(ReadGraphs(is).status().code(), StatusCode::kCorruption);
}

TEST(GraphIoTest, RejectsMalformedRecords) {
  {
    std::istringstream is("t # 0\nv 0\n");
    EXPECT_FALSE(ReadGraphs(is).ok());
  }
  {
    std::istringstream is("t # 0\nv 0 1\nz 1 2\n");
    EXPECT_FALSE(ReadGraphs(is).ok());
  }
  {
    std::istringstream is("t # 0\nv 0 1\ne 0 7\n");
    EXPECT_FALSE(ReadGraphs(is).ok());  // edge endpoint out of range
  }
}

TEST(GraphIoTest, GraphFromGSpanRequiresExactlyOne) {
  EXPECT_FALSE(GraphFromGSpan("").ok());
  const std::string two = "t # 0\nv 0 1\nt # 1\nv 0 2\n";
  EXPECT_FALSE(GraphFromGSpan(two).ok());
}

TEST(GraphIoTest, FileRoundTrip) {
  Rng rng(77);
  std::vector<Graph> graphs;
  for (int i = 0; i < 20; ++i) {
    graphs.push_back(RandomConnectedGraph(rng, 12, 4, 5));
  }
  const std::string path = ::testing::TempDir() + "/gcp_io_roundtrip.txt";
  ASSERT_TRUE(WriteGraphsToFile(path, graphs).ok());
  auto parsed = ReadGraphsFromFile(path);
  ASSERT_TRUE(parsed.ok());
  ASSERT_EQ(parsed.value().size(), graphs.size());
  for (std::size_t i = 0; i < graphs.size(); ++i) {
    EXPECT_EQ(parsed.value()[i], graphs[i]);
  }
  std::remove(path.c_str());
}

// Property-style round-trip: for many seeds, generator-produced graphs
// (connected, Erdos-Renyi, and permuted copies) must survive write → read
// with exact structural equality and identical canonical WL digests.
TEST(GraphIoTest, PropertyRoundTripPreservesCanonicalForm) {
  for (std::uint64_t seed = 1; seed <= 25; ++seed) {
    Rng rng(seed);
    std::vector<Graph> graphs;
    graphs.push_back(RandomConnectedGraph(rng, 3 + seed % 14, seed % 9,
                                          1 + seed % 6));
    graphs.push_back(RandomGraph(rng, 1 + seed % 16, 0.25, 1 + seed % 4));
    graphs.push_back(RandomlyPermuted(rng, graphs[0]));

    std::ostringstream os;
    WriteGraphs(os, graphs);
    std::istringstream is(os.str());
    auto parsed = ReadGraphs(is);
    ASSERT_TRUE(parsed.ok()) << "seed " << seed;
    ASSERT_EQ(parsed.value().size(), graphs.size()) << "seed " << seed;
    for (std::size_t i = 0; i < graphs.size(); ++i) {
      EXPECT_EQ(parsed.value()[i], graphs[i]) << "seed " << seed << " g" << i;
      EXPECT_EQ(WlDigest(parsed.value()[i]), WlDigest(graphs[i]))
          << "seed " << seed << " g" << i;
      EXPECT_TRUE(MaybeIsomorphic(parsed.value()[i], graphs[i]))
          << "seed " << seed << " g" << i;
    }
    // A permuted copy of g0 parsed back is still recognisably isomorphic.
    EXPECT_EQ(WlDigest(parsed.value()[2]), WlDigest(graphs[0]))
        << "seed " << seed;
  }
}

TEST(GraphIoTest, MissingFileReportsIOError) {
  EXPECT_EQ(ReadGraphsFromFile("/nonexistent/dir/xyz.txt").status().code(),
            StatusCode::kIOError);
}

}  // namespace
}  // namespace gcp
