#include "workload/zipf.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace gcp {
namespace {

TEST(ZipfTest, PmfSumsToOne) {
  const ZipfSampler z(100, 1.4);
  double total = 0.0;
  for (std::size_t r = 0; r < 100; ++r) total += z.Pmf(r);
  EXPECT_NEAR(total, 1.0, 1e-9);
  EXPECT_DOUBLE_EQ(z.Pmf(1000), 0.0);
}

TEST(ZipfTest, PmfMonotoneDecreasing) {
  const ZipfSampler z(50, 1.4);
  for (std::size_t r = 1; r < 50; ++r) {
    EXPECT_LT(z.Pmf(r), z.Pmf(r - 1));
  }
}

TEST(ZipfTest, PmfMatchesPowerLaw) {
  const ZipfSampler z(1000, 1.4);
  // p(r) / p(0) should be (r+1)^-1.4.
  for (const std::size_t r : {1u, 9u, 99u}) {
    EXPECT_NEAR(z.Pmf(r) / z.Pmf(0),
                std::pow(static_cast<double>(r + 1), -1.4), 1e-9);
  }
}

TEST(ZipfTest, SamplesWithinRange) {
  const ZipfSampler z(30, 1.4);
  Rng rng(5);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(z.Sample(rng), 30u);
  }
}

TEST(ZipfTest, EmpiricalFrequenciesMatchPmf) {
  const ZipfSampler z(20, 1.4);
  Rng rng(9);
  std::vector<int> counts(20, 0);
  const int n = 200000;
  for (int i = 0; i < n; ++i) ++counts[z.Sample(rng)];
  for (std::size_t r = 0; r < 5; ++r) {
    const double expected = z.Pmf(r) * n;
    EXPECT_NEAR(counts[r], expected, expected * 0.05 + 50);
  }
}

TEST(ZipfTest, AlphaZeroIsUniform) {
  const ZipfSampler z(10, 0.0);
  for (std::size_t r = 0; r < 10; ++r) {
    EXPECT_NEAR(z.Pmf(r), 0.1, 1e-9);
  }
}

TEST(ZipfTest, HigherAlphaIsMoreSkewed) {
  const ZipfSampler mild(100, 0.8);
  const ZipfSampler steep(100, 2.4);
  EXPECT_GT(steep.Pmf(0), mild.Pmf(0));
  EXPECT_LT(steep.Pmf(99), mild.Pmf(99));
}

TEST(ZipfTest, SingleElementAlwaysZero) {
  const ZipfSampler z(1, 1.4);
  Rng rng(3);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(z.Sample(rng), 0u);
  EXPECT_DOUBLE_EQ(z.Pmf(0), 1.0);
}

}  // namespace
}  // namespace gcp
