#include "workload/type_a.hpp"

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "dataset/aids_like.hpp"
#include "graph/canonical.hpp"
#include "match/matcher.hpp"

namespace gcp {
namespace {

std::vector<Graph> Corpus(std::uint64_t seed) {
  AidsLikeOptions opts;
  opts.num_graphs = 50;
  opts.mean_vertices = 14;
  opts.stddev_vertices = 4;
  opts.min_vertices = 6;
  opts.max_vertices = 30;
  opts.num_labels = 8;
  opts.seed = seed;
  return AidsLikeGenerator(opts).Generate();
}

TEST(TypeATest, GeneratesRequestedCount) {
  const auto ds = Corpus(1);
  const Workload w = GenerateTypeAByName(ds, "UU", 200, 2);
  EXPECT_EQ(w.size(), 200u);
  EXPECT_EQ(w.name, "UU");
}

TEST(TypeATest, NamesReflectDistributions) {
  const auto ds = Corpus(1);
  EXPECT_EQ(GenerateTypeAByName(ds, "ZZ", 5, 1).name, "ZZ");
  EXPECT_EQ(GenerateTypeAByName(ds, "ZU", 5, 1).name, "ZU");
  TypeAOptions opts;
  opts.graph_dist = SelectionDist::kUniform;
  opts.node_dist = SelectionDist::kZipf;
  opts.num_queries = 5;
  EXPECT_EQ(GenerateTypeA(ds, opts).name, "UZ");
}

TEST(TypeATest, QuerySizesFromConfiguredSet) {
  const auto ds = Corpus(3);
  const Workload w = GenerateTypeAByName(ds, "UU", 300, 4);
  for (const auto& wq : w.queries) {
    // Sizes are {4, 8, 12, 16, 20} but extraction may exhaust a small
    // source graph; edges never exceed the requested maximum.
    EXPECT_LE(wq.query.NumEdges(), 20u);
    EXPECT_GE(wq.query.NumEdges(), 1u);
    EXPECT_TRUE(wq.query.IsConnected());
  }
  // Full-size extractions dominate on this corpus.
  std::map<std::size_t, int> size_counts;
  for (const auto& wq : w.queries) ++size_counts[wq.query.NumEdges()];
  int canonical = 0;
  for (const std::size_t s : {4u, 8u, 12u, 16u, 20u}) {
    canonical += size_counts.count(s) ? size_counts[s] : 0;
  }
  EXPECT_GT(canonical, 200);
}

TEST(TypeATest, QueriesHaveNonEmptyAnswerAgainstSource) {
  // Every Type A query is extracted from a dataset graph, so it must match
  // at least one dataset graph.
  const auto ds = Corpus(5);
  const Workload w = GenerateTypeAByName(ds, "ZU", 40, 6);
  const auto matcher = MakeMatcher(MatcherKind::kVf2Plus);
  for (const auto& wq : w.queries) {
    bool any = false;
    for (const Graph& g : ds) {
      if (matcher->Contains(wq.query, g)) {
        any = true;
        break;
      }
    }
    EXPECT_TRUE(any);
  }
}

TEST(TypeATest, ZipfGraphSelectionProducesRepeats) {
  // ZU concentrates sources on few graphs → many digest-identical queries;
  // UU spreads them out. Compare distinct-digest counts.
  const auto ds = Corpus(7);
  const Workload zu = GenerateTypeAByName(ds, "ZU", 300, 8);
  const Workload uu = GenerateTypeAByName(ds, "UU", 300, 8);
  auto distinct = [](const Workload& w) {
    std::set<std::uint64_t> digests;
    for (const auto& wq : w.queries) digests.insert(WlDigest(wq.query));
    return digests.size();
  };
  EXPECT_LT(distinct(zu), distinct(uu));
}

TEST(TypeATest, DeterministicBySeed) {
  const auto ds = Corpus(9);
  const Workload a = GenerateTypeAByName(ds, "ZZ", 50, 10);
  const Workload b = GenerateTypeAByName(ds, "ZZ", 50, 10);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a.queries[i].query, b.queries[i].query);
  }
  const Workload c = GenerateTypeAByName(ds, "ZZ", 50, 11);
  bool any_diff = false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    any_diff |= !(a.queries[i].query == c.queries[i].query);
  }
  EXPECT_TRUE(any_diff);
}

}  // namespace
}  // namespace gcp
