#include "workload/query_gen.hpp"

#include <gtest/gtest.h>

#include "../test_util.hpp"
#include "dataset/aids_like.hpp"
#include "graph/generators.hpp"

namespace gcp {
namespace {

TEST(BfsExtractionTest, ProducesConnectedSubgraphOfRequestedSize) {
  Rng rng(1);
  for (int i = 0; i < 30; ++i) {
    const Graph source = RandomConnectedGraph(rng, 20, 8, 4);
    const Graph q = ExtractBfsQuery(source, 0, 8);
    EXPECT_EQ(q.NumEdges(), 8u);
    EXPECT_TRUE(q.IsConnected());
  }
}

TEST(BfsExtractionTest, QueryIsSubgraphOfSource) {
  Rng rng(2);
  const auto matcher = MakeMatcher(MatcherKind::kVf2Plus);
  for (int i = 0; i < 30; ++i) {
    const Graph source = RandomConnectedGraph(rng, 16, 6, 3);
    const Graph q = ExtractBfsQuery(
        source, static_cast<VertexId>(rng.UniformBelow(16)),
        2 + rng.UniformBelow(8));
    EXPECT_TRUE(matcher->Contains(q, source))
        << "extracted query must embed in its source";
  }
}

TEST(BfsExtractionTest, SmallerExtractionIsPrefixOfLarger) {
  // Deterministic BFS: size-s1 extraction from (source, start) is a
  // subgraph of the size-s2 extraction for s1 < s2 — the containment
  // structure Type A workloads rely on.
  Rng rng(99);
  const auto matcher = MakeMatcher(MatcherKind::kVf2Plus);
  for (int i = 0; i < 20; ++i) {
    const Graph source = RandomConnectedGraph(rng, 24, 10, 4);
    const VertexId start = static_cast<VertexId>(rng.UniformBelow(24));
    const Graph small = ExtractBfsQuery(source, start, 4);
    const Graph large = ExtractBfsQuery(source, start, 16);
    EXPECT_TRUE(matcher->Contains(small, large));
  }
}

TEST(BfsExtractionTest, DeterministicForSameInputs) {
  Rng rng(100);
  const Graph source = RandomConnectedGraph(rng, 20, 8, 3);
  EXPECT_EQ(ExtractBfsQuery(source, 3, 8), ExtractBfsQuery(source, 3, 8));
}

TEST(BfsExtractionTest, ExhaustsSmallComponentGracefully) {
  Rng rng(3);
  const Graph tiny = testing::MakePath({0, 1, 2});  // only 2 edges
  const Graph q = ExtractBfsQuery(tiny, 0, 50);
  EXPECT_EQ(q.NumEdges(), 2u);
  EXPECT_EQ(q.NumVertices(), 3u);
}

TEST(BfsExtractionTest, ZeroEdgesYieldsSingleVertex) {
  Rng rng(4);
  const Graph source = testing::MakePath({5, 6, 7});
  const Graph q = ExtractBfsQuery(source, 1, 0);
  EXPECT_EQ(q.NumVertices(), 1u);
  EXPECT_EQ(q.NumEdges(), 0u);
  EXPECT_EQ(q.label(0), 6u);
}

TEST(RandomWalkExtractionTest, ProducesConnectedSubgraph) {
  Rng rng(5);
  const auto matcher = MakeMatcher(MatcherKind::kVf2Plus);
  for (int i = 0; i < 30; ++i) {
    const Graph source = RandomConnectedGraph(rng, 18, 8, 3);
    const Graph q = ExtractRandomWalkQuery(
        rng, source, static_cast<VertexId>(rng.UniformBelow(18)),
        2 + rng.UniformBelow(6));
    EXPECT_GE(q.NumEdges(), 1u);
    EXPECT_TRUE(q.IsConnected());
    EXPECT_TRUE(matcher->Contains(q, source));
  }
}

TEST(RandomWalkExtractionTest, ReachesRequestedSizeOnAmpleGraph) {
  Rng rng(6);
  const Graph source = RandomConnectedGraph(rng, 30, 25, 2);
  int reached = 0;
  for (int i = 0; i < 20; ++i) {
    const Graph q = ExtractRandomWalkQuery(rng, source, 0, 6);
    if (q.NumEdges() == 6u) ++reached;
  }
  EXPECT_GE(reached, 15);  // dead ends are possible but rare here
}

TEST(NoAnswerOracleTest, CountsCandidatesByFeatures) {
  std::vector<Graph> dataset{testing::MakePath({0, 1, 2}),
                             testing::MakePath({0, 1}),
                             testing::MakeCycle({3, 3, 3})};
  const NoAnswerOracle oracle = NoAnswerOracle::Build(dataset);
  EXPECT_EQ(oracle.dataset_features.size(), 3u);
  EXPECT_EQ(oracle.label_pool.size(), 3u + 2u + 3u);
  const GraphFeatures probe =
      GraphFeatures::Extract(testing::MakePath({0, 1}));
  EXPECT_EQ(oracle.CountCandidates(probe), 2u);
}

TEST(NoAnswerQueryTest, ProducesNonEmptyCandidatesEmptyAnswer) {
  Rng rng(7);
  AidsLikeOptions opts;
  opts.num_graphs = 40;
  opts.mean_vertices = 10;
  opts.stddev_vertices = 3;
  opts.min_vertices = 5;
  opts.max_vertices = 18;
  opts.num_labels = 6;
  opts.seed = 7;
  const auto dataset = AidsLikeGenerator(opts).Generate();
  const NoAnswerOracle oracle = NoAnswerOracle::Build(dataset);
  const auto matcher = MakeMatcher(MatcherKind::kVf2Plus);

  int successes = 0;
  for (int i = 0; i < 10; ++i) {
    Graph q = ExtractRandomWalkQuery(
        rng, dataset[rng.UniformBelow(dataset.size())], 0, 5);
    if (!MakeNoAnswerQuery(rng, q, dataset, oracle, *matcher, 200)) continue;
    ++successes;
    const GraphFeatures qf = GraphFeatures::Extract(q);
    EXPECT_GT(oracle.CountCandidates(qf), 0u);
    for (const Graph& g : dataset) {
      EXPECT_FALSE(matcher->Contains(q, g))
          << "no-answer query must not match any dataset graph";
    }
  }
  EXPECT_GT(successes, 5);
}

}  // namespace
}  // namespace gcp
