#include "workload/type_b.hpp"

#include <gtest/gtest.h>

#include "dataset/aids_like.hpp"
#include "match/matcher.hpp"

namespace gcp {
namespace {

std::vector<Graph> Corpus(std::uint64_t seed) {
  AidsLikeOptions opts;
  opts.num_graphs = 40;
  opts.mean_vertices = 12;
  opts.stddev_vertices = 3;
  opts.min_vertices = 6;
  opts.max_vertices = 24;
  opts.num_labels = 6;
  opts.seed = seed;
  return AidsLikeGenerator(opts).Generate();
}

TypeBOptions SmallOptions(double no_answer_prob, std::uint64_t seed) {
  TypeBOptions opts;
  opts.no_answer_prob = no_answer_prob;
  opts.answer_pool_size = 60;
  opts.no_answer_pool_size = 15;
  opts.num_queries = 150;
  opts.seed = seed;
  return opts;
}

TEST(TypeBTest, ZeroProbabilityHasNoNoAnswerQueries) {
  const auto ds = Corpus(1);
  const Workload w = GenerateTypeB(ds, SmallOptions(0.0, 2));
  EXPECT_EQ(w.size(), 150u);
  EXPECT_EQ(w.name, "0%");
  for (const auto& wq : w.queries) {
    EXPECT_FALSE(wq.from_no_answer_pool);
  }
}

TEST(TypeBTest, MixRatioApproximatesProbability) {
  const auto ds = Corpus(3);
  const Workload w = GenerateTypeB(ds, SmallOptions(0.5, 4));
  EXPECT_EQ(w.name, "50%");
  int no_answer = 0;
  for (const auto& wq : w.queries) no_answer += wq.from_no_answer_pool;
  EXPECT_NEAR(static_cast<double>(no_answer) / 150.0, 0.5, 0.12);
}

TEST(TypeBTest, TwentyPercentName) {
  const auto ds = Corpus(3);
  EXPECT_EQ(GenerateTypeB(ds, SmallOptions(0.2, 5)).name, "20%");
}

TEST(TypeBTest, AnswerPoolQueriesMatchSomething) {
  const auto ds = Corpus(5);
  const Workload w = GenerateTypeB(ds, SmallOptions(0.0, 6));
  const auto matcher = MakeMatcher(MatcherKind::kVf2Plus);
  for (std::size_t i = 0; i < 25; ++i) {
    bool any = false;
    for (const Graph& g : ds) {
      if (matcher->Contains(w.queries[i].query, g)) {
        any = true;
        break;
      }
    }
    EXPECT_TRUE(any) << "answer-pool query " << i << " matches nothing";
  }
}

TEST(TypeBTest, NoAnswerQueriesMatchNothingInitially) {
  const auto ds = Corpus(7);
  const Workload w = GenerateTypeB(ds, SmallOptions(0.5, 8));
  const auto matcher = MakeMatcher(MatcherKind::kVf2Plus);
  int checked = 0;
  for (const auto& wq : w.queries) {
    if (!wq.from_no_answer_pool || checked >= 10) continue;
    ++checked;
    for (const Graph& g : ds) {
      EXPECT_FALSE(matcher->Contains(wq.query, g));
    }
  }
  EXPECT_GT(checked, 0);
}

TEST(TypeBTest, ZipfSelectionRepeatsPoolEntries) {
  const auto ds = Corpus(9);
  const Workload w = GenerateTypeB(ds, SmallOptions(0.0, 10));
  // With Zipf α=1.4 over a 60-query pool, the head query appears often.
  std::map<std::string, int> counts;
  for (const auto& wq : w.queries) ++counts[wq.query.ToString()];
  int max_count = 0;
  for (const auto& [key, c] : counts) max_count = std::max(max_count, c);
  EXPECT_GT(max_count, 10);
}

TEST(TypeBTest, DeterministicBySeed) {
  const auto ds = Corpus(11);
  const TypeBOptions opts = SmallOptions(0.2, 12);
  const Workload a = GenerateTypeB(ds, opts);
  const Workload b = GenerateTypeB(ds, opts);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a.queries[i].query, b.queries[i].query);
    EXPECT_EQ(a.queries[i].from_no_answer_pool,
              b.queries[i].from_no_answer_pool);
  }
}

}  // namespace
}  // namespace gcp
