#include "workload/runner.hpp"

#include <gtest/gtest.h>

#include "dataset/aids_like.hpp"
#include "workload/type_a.hpp"

namespace gcp {
namespace {

struct Fixture {
  std::vector<Graph> initial;
  Workload workload;
  ChangePlan plan;

  static Fixture Make(std::uint64_t seed, std::size_t queries = 80) {
    Fixture f;
    AidsLikeOptions opts;
    opts.num_graphs = 50;
    opts.mean_vertices = 10;
    opts.stddev_vertices = 3;
    opts.min_vertices = 5;
    opts.max_vertices = 20;
    opts.num_labels = 6;
    opts.seed = seed;
    f.initial = AidsLikeGenerator(opts).Generate();
    f.workload = GenerateTypeAByName(f.initial, "ZU", queries, seed + 1);
    Rng plan_rng(seed + 2);
    f.plan = ChangePlan::Generate(
        plan_rng, static_cast<std::uint32_t>(queries), 8, 3,
        static_cast<std::uint32_t>(f.initial.size()));
    return f;
  }
};

TEST(RunnerTest, MethodMBaselineTestsEveryLiveGraph) {
  const Fixture f = Fixture::Make(1);
  RunnerConfig cfg;
  cfg.mode = RunMode::kMethodM;
  cfg.warmup_queries = 0;
  const RunReport r = RunWorkload(f.initial, f.workload, f.plan, cfg);
  EXPECT_EQ(r.agg.queries, f.workload.size());
  // No cache: zero hits, and every query verified its full candidate set.
  EXPECT_EQ(r.agg.exact_hits, 0u);
  EXPECT_EQ(r.agg.sub_hits, 0u);
  EXPECT_EQ(r.agg.super_hits, 0u);
  EXPECT_GT(r.agg.si_tests, 0u);
  EXPECT_GT(r.avg_si_tests(), 40.0);  // ~50 live graphs per query
}

TEST(RunnerTest, WarmupExcludedFromAggregates) {
  const Fixture f = Fixture::Make(2);
  RunnerConfig cfg;
  cfg.mode = RunMode::kCon;
  cfg.warmup_queries = 20;
  const RunReport r = RunWorkload(f.initial, f.workload, f.plan, cfg);
  EXPECT_EQ(r.agg.queries, f.workload.size() - 20);
}

TEST(RunnerTest, RecordAnswersCoversAllQueries) {
  const Fixture f = Fixture::Make(3, 30);
  RunnerConfig cfg;
  cfg.mode = RunMode::kEvi;
  cfg.record_answers = true;
  const RunReport r = RunWorkload(f.initial, f.workload, f.plan, cfg);
  EXPECT_EQ(r.answers.size(), 30u);
}

TEST(RunnerTest, ConcurrentClientsMatchSerialAnswersOnStaticDataset) {
  // With an empty change plan the query↔change interleaving is trivially
  // deterministic, so the concurrent closed-loop must reproduce the serial
  // answers bit-exactly (exactness does not depend on cache state).
  Fixture f = Fixture::Make(5, 60);
  f.plan = ChangePlan();
  RunnerConfig serial;
  serial.mode = RunMode::kCon;
  serial.warmup_queries = 10;
  serial.record_answers = true;
  RunnerConfig concurrent = serial;
  concurrent.client_threads = 4;
  const RunReport s = RunWorkload(f.initial, f.workload, f.plan, serial);
  const RunReport c = RunWorkload(f.initial, f.workload, f.plan, concurrent);
  EXPECT_EQ(s.answers, c.answers);
  EXPECT_EQ(c.agg.queries, f.workload.size() - 10);
  EXPECT_EQ(c.measured_queries, f.workload.size() - 10);
  EXPECT_GT(c.qps(), 0.0);
}

TEST(RunnerTest, ConcurrentClientsWithChangePlanStayExactPerQuery) {
  // With a live change plan the interleaving is nondeterministic, but the
  // run must still complete every query and aggregate every metric.
  const Fixture f = Fixture::Make(6, 60);
  RunnerConfig cfg;
  cfg.mode = RunMode::kCon;
  cfg.warmup_queries = 0;
  cfg.client_threads = 3;
  cfg.record_answers = true;
  const RunReport r = RunWorkload(f.initial, f.workload, f.plan, cfg);
  EXPECT_EQ(r.agg.queries, f.workload.size());
  EXPECT_EQ(r.answers.size(), f.workload.size());
}

TEST(RunnerTest, ConSavesTestsOverMethodM) {
  const Fixture f = Fixture::Make(4, 120);
  RunnerConfig base;
  base.mode = RunMode::kMethodM;
  base.method = MatcherKind::kVf2Plus;
  const RunReport m = RunWorkload(f.initial, f.workload, f.plan, base);
  RunnerConfig con = base;
  con.mode = RunMode::kCon;
  const RunReport c = RunWorkload(f.initial, f.workload, f.plan, con);
  EXPECT_LT(c.agg.si_tests, m.agg.si_tests)
      << "CON must save sub-iso tests on a ZU workload";
  EXPECT_GT(SiTestSpeedup(m, c), 1.0);
}

TEST(RunnerTest, ConDominatesEviInTestSavings) {
  const Fixture f = Fixture::Make(5, 120);
  RunnerConfig cfg;
  cfg.method = MatcherKind::kVf2Plus;
  cfg.mode = RunMode::kEvi;
  const RunReport evi = RunWorkload(f.initial, f.workload, f.plan, cfg);
  cfg.mode = RunMode::kCon;
  const RunReport con = RunWorkload(f.initial, f.workload, f.plan, cfg);
  // With changes interleaved, CON retains knowledge EVI discards.
  EXPECT_LE(con.agg.si_tests, evi.agg.si_tests);
}

TEST(RunnerTest, LabelsDescribeConfiguration) {
  const Fixture f = Fixture::Make(6, 25);
  RunnerConfig cfg;
  cfg.mode = RunMode::kCon;
  cfg.method = MatcherKind::kGraphQl;
  const RunReport r = RunWorkload(f.initial, f.workload, f.plan, cfg);
  EXPECT_EQ(r.label, "CON/GQL/ZU");
}

TEST(RunnerTest, RunModeNames) {
  EXPECT_EQ(RunModeName(RunMode::kMethodM), "M");
  EXPECT_EQ(RunModeName(RunMode::kEvi), "EVI");
  EXPECT_EQ(RunModeName(RunMode::kCon), "CON");
}

TEST(RunnerTest, SpeedupHelpersHandleDegenerateInputs) {
  RunReport a, b;
  EXPECT_DOUBLE_EQ(QueryTimeSpeedup(a, b), 0.0);
  EXPECT_DOUBLE_EQ(SiTestSpeedup(a, b), 0.0);
}

TEST(RunnerTest, DatasetEvolutionIdenticalAcrossModes) {
  // The premise of cross-mode comparison: same plan seed ⇒ same final
  // dataset regardless of who executes the queries. We proxy this by
  // equality of recorded answers for the *final* query across modes when
  // the query stream is identical.
  const Fixture f = Fixture::Make(7, 60);
  RunnerConfig cfg;
  cfg.record_answers = true;
  cfg.mode = RunMode::kMethodM;
  const RunReport m = RunWorkload(f.initial, f.workload, f.plan, cfg);
  cfg.mode = RunMode::kEvi;
  const RunReport e = RunWorkload(f.initial, f.workload, f.plan, cfg);
  cfg.mode = RunMode::kCon;
  const RunReport c = RunWorkload(f.initial, f.workload, f.plan, cfg);
  EXPECT_EQ(m.answers, e.answers);
  EXPECT_EQ(m.answers, c.answers);
}

}  // namespace
}  // namespace gcp
