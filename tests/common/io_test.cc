#include "common/io.hpp"

#include <gtest/gtest.h>

#include <string>

#include "common/crc32.hpp"

namespace gcp {
namespace {

std::string TempPath(const char* name) {
  return ::testing::TempDir() + "/" + name;
}

TEST(Crc32Test, KnownVectors) {
  // IEEE reflected polynomial check value for "123456789".
  EXPECT_EQ(Crc32(std::string_view("123456789")), 0xCBF43926u);
  EXPECT_EQ(Crc32(std::string_view("")), 0u);
  EXPECT_EQ(Crc32(std::string_view("a")), 0xE8B7BE43u);
}

TEST(Crc32Test, IncrementalMatchesOneShot) {
  const std::string data = "the quick brown fox jumps over the lazy dog";
  const std::uint32_t whole = Crc32(std::string_view(data));
  for (std::size_t split = 0; split <= data.size(); ++split) {
    const std::uint32_t first = Crc32(data.data(), split);
    const std::uint32_t both =
        Crc32(data.data() + split, data.size() - split, first);
    EXPECT_EQ(both, whole) << "split at " << split;
  }
}

TEST(Crc32Test, DetectsSingleBitFlip) {
  std::string data = "checkpoint payload bytes";
  const std::uint32_t clean = Crc32(std::string_view(data));
  for (std::size_t i = 0; i < data.size(); ++i) {
    data[i] ^= 0x01;
    EXPECT_NE(Crc32(std::string_view(data)), clean) << "flip at byte " << i;
    data[i] ^= 0x01;
  }
}

TEST(AtomicFileWriterTest, CommitIsReadableAndTmpGone) {
  const std::string path = TempPath("awriter_commit.bin");
  AtomicFileWriter w(path);
  ASSERT_TRUE(w.Open().ok());
  ASSERT_TRUE(w.Append("hello ").ok());
  ASSERT_TRUE(w.Append("world").ok());
  ASSERT_TRUE(w.Commit().ok());
  EXPECT_EQ(w.bytes_written(), 11u);
  auto bytes = ReadFileToString(path);
  ASSERT_TRUE(bytes.ok());
  EXPECT_EQ(bytes.value(), "hello world");
  EXPECT_FALSE(FileExists(path + ".tmp"));
}

TEST(AtomicFileWriterTest, AbandonLeavesTornTmpAndNoFinalFile) {
  const std::string path = TempPath("awriter_abandon.bin");
  (void)RemoveFile(path);
  {
    AtomicFileWriter w(path);
    ASSERT_TRUE(w.Open().ok());
    ASSERT_TRUE(w.Append("partial").ok());
    // Destructor abandons: crash-shaped, tmp stays behind.
  }
  EXPECT_FALSE(FileExists(path));
  EXPECT_TRUE(FileExists(path + ".tmp"));
  // The next writer truncates the torn tmp and commits cleanly over it.
  AtomicFileWriter w2(path);
  ASSERT_TRUE(w2.Open().ok());
  ASSERT_TRUE(w2.Append("fresh").ok());
  ASSERT_TRUE(w2.Commit().ok());
  auto bytes = ReadFileToString(path);
  ASSERT_TRUE(bytes.ok());
  EXPECT_EQ(bytes.value(), "fresh");
}

TEST(AtomicFileWriterTest, InjectedWriteFailureIsSticky) {
  const std::string path = TempPath("awriter_fail_write.bin");
  ScriptedFaultInjector fault;
  fault.FailAtKind(FaultInjector::Op::kWrite, 0, Status::IOError("boom"));
  AtomicFileWriter w(path, &fault);
  ASSERT_TRUE(w.Open().ok());
  const Status st = w.Append("doomed");
  EXPECT_FALSE(st.ok());
  EXPECT_TRUE(fault.fired());
  // Every later call reports the first error; nothing was committed.
  EXPECT_FALSE(w.Append("more").ok());
  EXPECT_FALSE(w.Commit().ok());
  EXPECT_FALSE(FileExists(path));
}

TEST(AtomicFileWriterTest, TornPrefixWritesExactlyKBytes) {
  const std::string path = TempPath("awriter_torn.bin");
  (void)RemoveFile(path + ".tmp");
  ScriptedFaultInjector fault;
  fault.FailAtKind(FaultInjector::Op::kWrite, 0, Status::IOError("torn"),
                   /*torn_prefix=*/3);
  AtomicFileWriter w(path, &fault);
  ASSERT_TRUE(w.Open().ok());
  EXPECT_FALSE(w.Append("abcdef").ok());
  w.Abandon();
  auto torn = ReadFileToString(path + ".tmp");
  ASSERT_TRUE(torn.ok());
  EXPECT_EQ(torn.value(), "abc");
  EXPECT_FALSE(FileExists(path));
}

TEST(AtomicFileWriterTest, FsyncAndRenameFaults) {
  for (const auto op : {FaultInjector::Op::kFsync, FaultInjector::Op::kRename}) {
    const std::string path = TempPath("awriter_fault_commit.bin");
    (void)RemoveFile(path);
    ScriptedFaultInjector fault;
    fault.FailAtKind(op, 0, Status::IOError("commit fault"));
    AtomicFileWriter w(path, &fault);
    ASSERT_TRUE(w.Open().ok());
    ASSERT_TRUE(w.Append("payload").ok());
    EXPECT_FALSE(w.Commit().ok());
    EXPECT_FALSE(FileExists(path));
    EXPECT_TRUE(FileExists(path + ".tmp"));
    (void)RemoveFile(path + ".tmp");
  }
}

TEST(AtomicFileWriterTest, OpenFaultSurfaces) {
  ScriptedFaultInjector fault;
  fault.FailAtKind(FaultInjector::Op::kOpen, 0,
                   Status::IOError("no descriptor"));
  AtomicFileWriter w(TempPath("awriter_fault_open.bin"), &fault);
  EXPECT_FALSE(w.Open().ok());
}

TEST(ScriptedFaultInjectorTest, GlobalIndexCountsAcrossKinds) {
  ScriptedFaultInjector fault;
  fault.FailAt(2, Status::IOError("third op"));
  EXPECT_TRUE(fault.OnOp(FaultInjector::Op::kOpen, "p", 0).status.ok());
  EXPECT_TRUE(fault.OnOp(FaultInjector::Op::kWrite, "p", 8).status.ok());
  EXPECT_FALSE(fault.OnOp(FaultInjector::Op::kFsync, "p", 0).status.ok());
  EXPECT_TRUE(fault.fired());
  EXPECT_EQ(fault.ops_seen(), 3u);
  EXPECT_EQ(fault.ops_seen(FaultInjector::Op::kWrite), 1u);
}

TEST(IoHelpersTest, FileRoutines) {
  const std::string dir = TempPath("io_helpers_dir");
  ASSERT_TRUE(EnsureDirectory(dir).ok());
  ASSERT_TRUE(EnsureDirectory(dir).ok());  // EEXIST is OK
  const std::string path = dir + "/file.txt";
  {
    AtomicFileWriter w(path);
    ASSERT_TRUE(w.Open().ok());
    ASSERT_TRUE(w.Append("xyz").ok());
    ASSERT_TRUE(w.Commit().ok());
  }
  EXPECT_TRUE(FileExists(path));
  auto size = FileSize(path);
  ASSERT_TRUE(size.ok());
  EXPECT_EQ(size.value(), 3u);
  auto names = ListDirectory(dir);
  ASSERT_TRUE(names.ok());
  ASSERT_EQ(names.value().size(), 1u);
  EXPECT_EQ(names.value()[0], "file.txt");
  EXPECT_TRUE(RemoveFile(path).ok());
  EXPECT_TRUE(RemoveFile(path).ok());  // ENOENT is OK
  EXPECT_FALSE(FileExists(path));
  EXPECT_FALSE(ReadFileToString(path).ok());
}

}  // namespace
}  // namespace gcp
