#include "common/bitset.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"

namespace gcp {
namespace {

TEST(BitsetTest, StartsEmpty) {
  DynamicBitset b;
  EXPECT_EQ(b.size(), 0u);
  EXPECT_TRUE(b.empty());
  EXPECT_TRUE(b.None());
  EXPECT_EQ(b.Count(), 0u);
}

TEST(BitsetTest, ConstructWithValue) {
  DynamicBitset zeros(70, false);
  EXPECT_EQ(zeros.size(), 70u);
  EXPECT_EQ(zeros.Count(), 0u);
  DynamicBitset ones(70, true);
  EXPECT_EQ(ones.Count(), 70u);
  EXPECT_TRUE(ones.All());
}

TEST(BitsetTest, SetResetTest) {
  DynamicBitset b(130);
  b.Set(0);
  b.Set(64);
  b.Set(129);
  EXPECT_TRUE(b.Test(0));
  EXPECT_TRUE(b.Test(64));
  EXPECT_TRUE(b.Test(129));
  EXPECT_FALSE(b.Test(1));
  EXPECT_EQ(b.Count(), 3u);
  b.Reset(64);
  EXPECT_FALSE(b.Test(64));
  EXPECT_EQ(b.Count(), 2u);
}

TEST(BitsetTest, TestOrFalseBeyondSize) {
  DynamicBitset b(10);
  b.Set(9);
  EXPECT_TRUE(b.TestOrFalse(9));
  EXPECT_FALSE(b.TestOrFalse(10));
  EXPECT_FALSE(b.TestOrFalse(1000));
}

TEST(BitsetTest, ResizeGrowZeroFills) {
  // The exact semantics Algorithm 2 needs: newly exposed bits are false.
  DynamicBitset b(5, true);
  b.Resize(200, false);
  EXPECT_EQ(b.size(), 200u);
  EXPECT_EQ(b.Count(), 5u);
  for (std::size_t i = 5; i < 200; ++i) EXPECT_FALSE(b.Test(i));
}

TEST(BitsetTest, ResizeGrowOneFills) {
  DynamicBitset b(5, false);
  b.Set(2);
  b.Resize(100, true);
  EXPECT_EQ(b.Count(), 1u + 95u);
  EXPECT_FALSE(b.Test(0));
  EXPECT_TRUE(b.Test(2));
  EXPECT_TRUE(b.Test(5));
  EXPECT_TRUE(b.Test(99));
}

TEST(BitsetTest, ResizeShrinkClearsPadding) {
  DynamicBitset b(128, true);
  b.Resize(3);
  EXPECT_EQ(b.size(), 3u);
  EXPECT_EQ(b.Count(), 3u);
  b.Resize(128, false);
  EXPECT_EQ(b.Count(), 3u);  // old tail bits must not resurrect
}

TEST(BitsetTest, SetAllRespectsSize) {
  DynamicBitset b(67);
  b.SetAll();
  EXPECT_EQ(b.Count(), 67u);
  EXPECT_TRUE(b.All());
  b.ResetAll();
  EXPECT_TRUE(b.None());
}

TEST(BitsetTest, ComplementWithinSize) {
  DynamicBitset b(66);
  b.Set(0);
  b.Set(65);
  b.Complement();
  EXPECT_EQ(b.Count(), 64u);
  EXPECT_FALSE(b.Test(0));
  EXPECT_FALSE(b.Test(65));
  EXPECT_TRUE(b.Test(1));
  // Double complement restores.
  b.Complement();
  EXPECT_EQ(b.Count(), 2u);
}

TEST(BitsetTest, AndOrAndNotAlgebra) {
  DynamicBitset a(100), b(100);
  for (std::size_t i = 0; i < 100; i += 2) a.Set(i);   // evens
  for (std::size_t i = 0; i < 100; i += 3) b.Set(i);   // multiples of 3
  const DynamicBitset both = DynamicBitset::And(a, b);  // multiples of 6
  EXPECT_EQ(both.Count(), 17u);  // 0,6,...,96
  const DynamicBitset either = DynamicBitset::Or(a, b);
  EXPECT_EQ(either.Count(), 50u + 34u - 17u);
  const DynamicBitset diff = DynamicBitset::AndNot(a, b);
  EXPECT_EQ(diff.Count(), 50u - 17u);
  // In-place variants agree with the static ones.
  DynamicBitset c = a;
  c.AndWith(b);
  EXPECT_EQ(c, both);
  c = a;
  c.OrWith(b);
  EXPECT_EQ(c, either);
  c = a;
  c.AndNotWith(b);
  EXPECT_EQ(c, diff);
}

TEST(BitsetTest, CountAndMatchesMaterializedIntersection) {
  Rng rng(7);
  DynamicBitset a(500), b(500);
  for (int i = 0; i < 200; ++i) {
    a.Set(rng.UniformBelow(500));
    b.Set(rng.UniformBelow(500));
  }
  EXPECT_EQ(a.CountAnd(b), DynamicBitset::And(a, b).Count());
}

TEST(BitsetTest, IntersectsAndSubset) {
  DynamicBitset a(80), b(80);
  a.Set(3);
  a.Set(70);
  b.Set(70);
  EXPECT_TRUE(a.Intersects(b));
  EXPECT_TRUE(b.IsSubsetOf(a));
  EXPECT_FALSE(a.IsSubsetOf(b));
  b.Reset(70);
  EXPECT_FALSE(a.Intersects(b));
  EXPECT_TRUE(b.IsSubsetOf(a));  // empty set is subset of everything
}

TEST(BitsetTest, FindNextScansAcrossWords) {
  DynamicBitset b(200);
  b.Set(5);
  b.Set(64);
  b.Set(199);
  EXPECT_EQ(b.FindFirst(), 5u);
  EXPECT_EQ(b.FindNext(6), 64u);
  EXPECT_EQ(b.FindNext(65), 199u);
  EXPECT_EQ(b.FindNext(200), DynamicBitset::npos);
  DynamicBitset empty(10);
  EXPECT_EQ(empty.FindFirst(), DynamicBitset::npos);
}

TEST(BitsetTest, ForEachSetBitAscending) {
  DynamicBitset b(150);
  const std::vector<std::size_t> expected{0, 63, 64, 127, 128, 149};
  for (const auto i : expected) b.Set(i);
  EXPECT_EQ(b.ToVector(), expected);
}

TEST(BitsetTest, ToStringRendersPositions) {
  DynamicBitset b(5);
  b.Set(1);
  b.Set(4);
  EXPECT_EQ(b.ToString(), "01001");
}

TEST(BitsetTest, EqualityIncludesSize) {
  DynamicBitset a(10), b(11);
  EXPECT_FALSE(a == b);
  DynamicBitset c(10);
  EXPECT_TRUE(a == c);
  c.Set(3);
  EXPECT_FALSE(a == c);
}

TEST(BitsetTest, NotOfEmptyAndFull) {
  const DynamicBitset full = DynamicBitset::Not(DynamicBitset(65, false));
  EXPECT_TRUE(full.All());
  const DynamicBitset none = DynamicBitset::Not(DynamicBitset(65, true));
  EXPECT_TRUE(none.None());
}

// Randomized algebra laws (De Morgan, absorption) over awkward sizes.
class BitsetAlgebraTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(BitsetAlgebraTest, DeMorganAndAbsorption) {
  const std::size_t n = GetParam();
  Rng rng(n * 31 + 1);
  DynamicBitset a(n), b(n);
  for (std::size_t i = 0; i < n; ++i) {
    if (rng.Bernoulli(0.4)) a.Set(i);
    if (rng.Bernoulli(0.4)) b.Set(i);
  }
  // ¬(a ∪ b) == ¬a ∩ ¬b
  EXPECT_EQ(DynamicBitset::Not(DynamicBitset::Or(a, b)),
            DynamicBitset::And(DynamicBitset::Not(a), DynamicBitset::Not(b)));
  // ¬(a ∩ b) == ¬a ∪ ¬b
  EXPECT_EQ(DynamicBitset::Not(DynamicBitset::And(a, b)),
            DynamicBitset::Or(DynamicBitset::Not(a), DynamicBitset::Not(b)));
  // a ∩ (a ∪ b) == a
  EXPECT_EQ(DynamicBitset::And(a, DynamicBitset::Or(a, b)), a);
  // a \ b == a ∩ ¬b
  EXPECT_EQ(DynamicBitset::AndNot(a, b),
            DynamicBitset::And(a, DynamicBitset::Not(b)));
}

INSTANTIATE_TEST_SUITE_P(Sizes, BitsetAlgebraTest,
                         ::testing::Values(1, 63, 64, 65, 127, 128, 129, 1000));

}  // namespace
}  // namespace gcp
