// Differential fuzz of DynamicBitset against a std::vector<bool> reference
// model. The bitset underpins every consistency decision in GC+ (Answer,
// CGvalid, candidate sets), so its operations are validated operation-by-
// operation against an independently maintained model across randomized
// op sequences spanning word boundaries.

#include <gtest/gtest.h>

#include <vector>

#include "common/bitset.hpp"
#include "common/rng.hpp"

namespace gcp {
namespace {

class ReferenceModel {
 public:
  explicit ReferenceModel(std::size_t n) : bits_(n, false) {}

  void Set(std::size_t i, bool v) { bits_[i] = v; }
  void Resize(std::size_t n, bool v) { bits_.resize(n, v); }
  void SetAll() { bits_.assign(bits_.size(), true); }
  void ResetAll() { bits_.assign(bits_.size(), false); }
  void Complement() {
    for (std::size_t i = 0; i < bits_.size(); ++i) bits_[i] = !bits_[i];
  }
  void AndWith(const ReferenceModel& o) {
    for (std::size_t i = 0; i < bits_.size(); ++i) {
      bits_[i] = bits_[i] && o.bits_[i];
    }
  }
  void OrWith(const ReferenceModel& o) {
    for (std::size_t i = 0; i < bits_.size(); ++i) {
      bits_[i] = bits_[i] || o.bits_[i];
    }
  }
  void AndNotWith(const ReferenceModel& o) {
    for (std::size_t i = 0; i < bits_.size(); ++i) {
      bits_[i] = bits_[i] && !o.bits_[i];
    }
  }

  std::size_t Count() const {
    std::size_t c = 0;
    for (const bool b : bits_) c += b ? 1 : 0;
    return c;
  }
  std::size_t FindNext(std::size_t from) const {
    for (std::size_t i = from; i < bits_.size(); ++i) {
      if (bits_[i]) return i;
    }
    return DynamicBitset::npos;
  }
  bool Test(std::size_t i) const { return bits_[i]; }
  std::size_t size() const { return bits_.size(); }

 private:
  std::vector<bool> bits_;
};

void ExpectAgree(const DynamicBitset& b, const ReferenceModel& m) {
  ASSERT_EQ(b.size(), m.size());
  ASSERT_EQ(b.Count(), m.Count());
  for (std::size_t i = 0; i < m.size(); ++i) {
    ASSERT_EQ(b.Test(i), m.Test(i)) << "bit " << i;
  }
  // Scan agreement at a few positions.
  for (const std::size_t from : {std::size_t{0}, m.size() / 2}) {
    ASSERT_EQ(b.FindNext(from), m.FindNext(from));
  }
}

class BitsetDifferentialTest
    : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(BitsetDifferentialTest, RandomOpSequenceAgrees) {
  Rng rng(GetParam());
  std::size_t n = 1 + rng.UniformBelow(200);
  DynamicBitset a(n), b(n);
  ReferenceModel ma(n), mb(n);

  for (int step = 0; step < 400; ++step) {
    switch (rng.UniformBelow(9)) {
      case 0: {  // set/clear a random bit in a
        if (n == 0) break;
        const std::size_t i = rng.UniformBelow(n);
        const bool v = rng.Bernoulli(0.5);
        a.Set(i, v);
        ma.Set(i, v);
        break;
      }
      case 1: {  // set/clear a random bit in b
        if (n == 0) break;
        const std::size_t i = rng.UniformBelow(n);
        const bool v = rng.Bernoulli(0.5);
        b.Set(i, v);
        mb.Set(i, v);
        break;
      }
      case 2: {  // resize both (grow or shrink, random fill)
        const std::size_t new_n = 1 + rng.UniformBelow(300);
        const bool fill = rng.Bernoulli(0.3);
        a.Resize(new_n, fill);
        ma.Resize(new_n, fill);
        b.Resize(new_n, fill);
        mb.Resize(new_n, fill);
        n = new_n;
        break;
      }
      case 3:
        a.AndWith(b);
        ma.AndWith(mb);
        break;
      case 4:
        a.OrWith(b);
        ma.OrWith(mb);
        break;
      case 5:
        a.AndNotWith(b);
        ma.AndNotWith(mb);
        break;
      case 6:
        b.Complement();
        mb.Complement();
        break;
      case 7:
        a.SetAll();
        ma.SetAll();
        break;
      default:
        b.ResetAll();
        mb.ResetAll();
        break;
    }
    ExpectAgree(a, ma);
    ExpectAgree(b, mb);
    // Derived-value agreement on the static operations too.
    ASSERT_EQ(a.CountAnd(b), DynamicBitset::And(a, b).Count());
    ASSERT_EQ(a.Intersects(b), a.CountAnd(b) > 0);
    ASSERT_EQ(a.IsSubsetOf(b), DynamicBitset::AndNot(a, b).None());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BitsetDifferentialTest,
                         ::testing::Values(1001, 1002, 1003, 1004, 1005,
                                           1006));

}  // namespace
}  // namespace gcp
