// MaintenanceThread: timer wakeups, pressure wakeups, idempotent stop
// with a final drain.

#include "common/maintenance_thread.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>

namespace gcp {
namespace {

using namespace std::chrono_literals;

TEST(MaintenanceThreadTest, TimerWakesWithoutNotify) {
  std::atomic<int> drains{0};
  MaintenanceThread t([&drains] { drains.fetch_add(1); }, 1ms);
  // Wait until the timer has demonstrably fired a few times (bounded to
  // keep a loaded CI machine from flaking).
  for (int spin = 0; spin < 2000 && drains.load() < 3; ++spin) {
    std::this_thread::sleep_for(1ms);
  }
  EXPECT_GE(drains.load(), 3);
  t.Stop();
  EXPECT_GE(t.wakeups(), 3u);
}

TEST(MaintenanceThreadTest, NotifyWakesLongTimer) {
  std::atomic<int> drains{0};
  // An hour-long timer: any drain within the test must come from Notify.
  MaintenanceThread t([&drains] { drains.fetch_add(1); },
                      std::chrono::microseconds(3'600'000'000LL));
  t.Notify();
  for (int spin = 0; spin < 2000 && drains.load() < 1; ++spin) {
    std::this_thread::sleep_for(1ms);
  }
  EXPECT_GE(drains.load(), 1);
  EXPECT_GE(t.notified_wakeups(), 1u);
  t.Stop();
}

TEST(MaintenanceThreadTest, StopRunsFinalDrainAndIsIdempotent) {
  std::atomic<int> drains{0};
  MaintenanceThread t([&drains] { drains.fetch_add(1); },
                      std::chrono::microseconds(3'600'000'000LL));
  t.Stop();
  const int after_stop = drains.load();
  EXPECT_GE(after_stop, 1);  // the final drain ran
  t.Stop();                  // idempotent
  EXPECT_EQ(drains.load(), after_stop);
}

TEST(MaintenanceThreadTest, DestructorStops) {
  std::atomic<int> drains{0};
  {
    MaintenanceThread t([&drains] { drains.fetch_add(1); }, 1ms);
  }  // dtor joins; no use-after-free under ASan/TSan
  const int settled = drains.load();
  std::this_thread::sleep_for(5ms);
  EXPECT_EQ(drains.load(), settled);
}

}  // namespace
}  // namespace gcp
