// Differential tests: every dispatchable SIMD level must agree bit for
// bit with the scalar oracle on random and adversarial inputs, and the
// level override must clamp/restore correctly.

#include "common/simd.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <random>
#include <vector>

#include "graph/graph.hpp"

namespace gcp {
namespace {

using simd::SimdLevel;

std::vector<SimdLevel> DispatchableLevels() {
  std::vector<SimdLevel> levels = {SimdLevel::kScalar};
  if (simd::DetectedSimdLevel() >= SimdLevel::kPopcnt) {
    levels.push_back(SimdLevel::kPopcnt);
  }
  if (simd::DetectedSimdLevel() >= SimdLevel::kAvx2) {
    levels.push_back(SimdLevel::kAvx2);
  }
  return levels;
}

class SimdLevelGuard {
 public:
  ~SimdLevelGuard() { simd::SetSimdLevel(simd::DetectedSimdLevel()); }
};

std::vector<std::uint64_t> RandomWords(std::mt19937_64& rng, std::size_t n,
                                       int density_shift) {
  std::vector<std::uint64_t> w(n);
  for (auto& x : w) {
    x = rng();
    // Thin or thicken the population to hit early-exit paths.
    for (int s = 0; s < density_shift; ++s) x &= rng();
  }
  return w;
}

TEST(SimdTest, LevelOverrideClampsAndRestores) {
  SimdLevelGuard guard;
  simd::SetSimdLevel(SimdLevel::kScalar);
  EXPECT_EQ(simd::ActiveSimdLevel(), SimdLevel::kScalar);
  simd::SetSimdLevel(SimdLevel::kAvx2);
  EXPECT_LE(simd::ActiveSimdLevel(), simd::DetectedSimdLevel());
}

TEST(SimdTest, WordKernelsMatchScalarAtEveryLevel) {
  SimdLevelGuard guard;
  std::mt19937_64 rng(20260808);
  for (const std::size_t n : {std::size_t{0}, std::size_t{1}, std::size_t{3},
                              std::size_t{4}, std::size_t{7}, std::size_t{8},
                              std::size_t{33}, std::size_t{129}}) {
    for (int trial = 0; trial < 20; ++trial) {
      const auto a = RandomWords(rng, n, trial % 3);
      const auto b = RandomWords(rng, n, trial % 4);

      simd::SetSimdLevel(SimdLevel::kScalar);
      auto and_ref = a;
      simd::AndWords(and_ref.data(), b.data(), n);
      auto or_ref = a;
      simd::OrWords(or_ref.data(), b.data(), n);
      auto andnot_ref = a;
      simd::AndNotWords(andnot_ref.data(), b.data(), n);
      const std::size_t pop_ref = simd::PopcountWords(a.data(), n);
      const std::size_t popand_ref =
          simd::PopcountAndWords(a.data(), b.data(), n);
      const bool inter_ref = simd::IntersectsWords(a.data(), b.data(), n);
      const bool any_ref = simd::AnyWord(a.data(), n);
      const bool subset_ref = simd::SubsetWords(a.data(), b.data(), n);

      for (const SimdLevel level : DispatchableLevels()) {
        simd::SetSimdLevel(level);
        auto and_got = a;
        simd::AndWords(and_got.data(), b.data(), n);
        EXPECT_EQ(and_got, and_ref) << simd::SimdLevelName(level);
        auto or_got = a;
        simd::OrWords(or_got.data(), b.data(), n);
        EXPECT_EQ(or_got, or_ref) << simd::SimdLevelName(level);
        auto andnot_got = a;
        simd::AndNotWords(andnot_got.data(), b.data(), n);
        EXPECT_EQ(andnot_got, andnot_ref) << simd::SimdLevelName(level);
        EXPECT_EQ(simd::PopcountWords(a.data(), n), pop_ref)
            << simd::SimdLevelName(level);
        EXPECT_EQ(simd::PopcountAndWords(a.data(), b.data(), n), popand_ref)
            << simd::SimdLevelName(level);
        EXPECT_EQ(simd::IntersectsWords(a.data(), b.data(), n), inter_ref)
            << simd::SimdLevelName(level);
        EXPECT_EQ(simd::AnyWord(a.data(), n), any_ref)
            << simd::SimdLevelName(level);
        EXPECT_EQ(simd::SubsetWords(a.data(), b.data(), n), subset_ref)
            << simd::SimdLevelName(level);
      }
    }
  }
}

TEST(SimdTest, SubsetAndIntersectEdgeCases) {
  SimdLevelGuard guard;
  for (const SimdLevel level : DispatchableLevels()) {
    simd::SetSimdLevel(level);
    const std::vector<std::uint64_t> zero(9, 0);
    std::vector<std::uint64_t> full(9, ~std::uint64_t{0});
    EXPECT_TRUE(simd::SubsetWords(zero.data(), full.data(), 9));
    EXPECT_TRUE(simd::SubsetWords(zero.data(), zero.data(), 9));
    EXPECT_FALSE(simd::SubsetWords(full.data(), zero.data(), 9));
    EXPECT_TRUE(simd::SubsetWords(full.data(), full.data(), 9));
    // A single stray bit in the last word must flip subset/intersects.
    auto almost = zero;
    almost[8] = std::uint64_t{1} << 63;
    EXPECT_FALSE(simd::SubsetWords(almost.data(), zero.data(), 9));
    EXPECT_TRUE(simd::IntersectsWords(almost.data(), full.data(), 9));
    EXPECT_FALSE(simd::IntersectsWords(almost.data(), zero.data(), 9));
    EXPECT_TRUE(simd::AnyWord(almost.data(), 9));
    EXPECT_FALSE(simd::AnyWord(zero.data(), 9));
  }
}

// The batched screen must agree with graph.hpp's SignatureDominates —
// the exact predicate VF2+ uses — at every level, on every lane position.
TEST(SimdTest, SignatureScreenMatchesScalarDominance) {
  SimdLevelGuard guard;
  std::mt19937_64 rng(7);
  for (const std::size_t n :
       {std::size_t{0}, std::size_t{1}, std::size_t{2}, std::size_t{3},
        std::size_t{4}, std::size_t{5}, std::size_t{8}, std::size_t{31},
        std::size_t{64}}) {
    for (int trial = 0; trial < 50; ++trial) {
      // Nibble-wise signatures: draw small per-nibble counts so both
      // outcomes are common.
      auto draw_sig = [&rng]() {
        std::uint64_t sig = 0;
        for (int nib = 0; nib < 16; ++nib) {
          sig |= (rng() % 4) << (4 * nib);
        }
        return sig;
      };
      const std::uint64_t sub = draw_sig();
      std::vector<std::uint64_t> supers(n);
      for (auto& s : supers) s = draw_sig();

      std::vector<std::uint32_t> expected;
      for (std::size_t i = 0; i < n; ++i) {
        if (SignatureDominates(sub, supers[i])) {
          expected.push_back(static_cast<std::uint32_t>(i));
        }
      }
      for (const SimdLevel level : DispatchableLevels()) {
        simd::SetSimdLevel(level);
        std::vector<std::uint32_t> got(n + 1, 0xFFFFFFFFu);
        const std::size_t kept =
            simd::SignatureDominanceScreen(sub, supers.data(), n, got.data());
        ASSERT_EQ(kept, expected.size()) << simd::SimdLevelName(level);
        for (std::size_t i = 0; i < kept; ++i) {
          EXPECT_EQ(got[i], expected[i]) << simd::SimdLevelName(level);
        }
      }
    }
  }
}

}  // namespace
}  // namespace gcp
