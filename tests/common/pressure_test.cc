#include "common/pressure.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <thread>
#include <vector>

#include "common/alloc_fault.hpp"

namespace gcp {
namespace {

PressureConfig BudgetConfig(std::uint64_t budget) {
  PressureConfig cfg;
  cfg.byte_budget = budget;
  return cfg;
}

TEST(PressureMonitorTest, StartsNormalAndNamesTiers) {
  PressureMonitor mon(BudgetConfig(1000));
  EXPECT_EQ(mon.tier(), PressureTier::kNormal);
  EXPECT_EQ(mon.bytes(), 0u);
  EXPECT_STREQ(PressureTierName(PressureTier::kNormal), "NORMAL");
  EXPECT_STREQ(PressureTierName(PressureTier::kElevated), "ELEVATED");
  EXPECT_STREQ(PressureTierName(PressureTier::kCritical), "CRITICAL");
}

TEST(PressureMonitorTest, ByteChannelEntersStrictlyAboveThreshold) {
  PressureMonitor mon(BudgetConfig(1000));
  // Steady-state occupancy (at or just past the budget) is NOT pressure:
  // the byte channel keys on unmerged-window overshoot beyond it.
  mon.AddBytes(1000);
  EXPECT_EQ(mon.tier(), PressureTier::kNormal);
  mon.AddBytes(350);  // exactly 1.35 — enter is strict
  EXPECT_EQ(mon.tier(), PressureTier::kNormal);
  mon.AddBytes(1);  // 1.351 > 1.35
  EXPECT_EQ(mon.tier(), PressureTier::kElevated);
  EXPECT_EQ(mon.elevated_transitions(), 1u);
  mon.AddBytes(400);  // 1.751 > 1.75
  EXPECT_EQ(mon.tier(), PressureTier::kCritical);
  EXPECT_EQ(mon.critical_transitions(), 1u);
}

TEST(PressureMonitorTest, ByteChannelRecoversWithHysteresis) {
  PressureMonitor mon(BudgetConfig(1000));
  mon.AddBytes(1800);  // CRITICAL
  ASSERT_EQ(mon.tier(), PressureTier::kCritical);
  // Falling below the enter threshold is not enough; exit is <= 1.35.
  mon.AddBytes(-400);  // 1.40
  EXPECT_EQ(mon.tier(), PressureTier::kCritical);
  mon.AddBytes(-50);  // 1.35 — exit is inclusive
  EXPECT_EQ(mon.tier(), PressureTier::kElevated);
  mon.AddBytes(-200);  // 1.15 — still above the 1.10 elevated exit
  EXPECT_EQ(mon.tier(), PressureTier::kElevated);
  mon.AddBytes(-50);  // 1.10
  EXPECT_EQ(mon.tier(), PressureTier::kNormal);
  // One full excursion = one transition per tier, not one per sample.
  EXPECT_EQ(mon.elevated_transitions(), 1u);
  EXPECT_EQ(mon.critical_transitions(), 1u);
}

TEST(PressureMonitorTest, ZeroBudgetDisablesByteChannel) {
  PressureMonitor mon(BudgetConfig(0));
  mon.AddBytes(1'000'000'000);
  EXPECT_EQ(mon.tier(), PressureTier::kNormal);
  // The queue channel still works.
  mon.NoteQueueDepth(61, 100);
  EXPECT_EQ(mon.tier(), PressureTier::kElevated);
}

TEST(PressureMonitorTest, QueueChannelFullQueueIsCritical) {
  PressureMonitor mon(BudgetConfig(1000));
  mon.NoteQueueDepth(30, 100);
  EXPECT_EQ(mon.tier(), PressureTier::kNormal);
  mon.NoteQueueDepth(61, 100);
  EXPECT_EQ(mon.tier(), PressureTier::kElevated);
  mon.NoteQueueDepth(100, 100);  // full = producers already draining inline
  EXPECT_EQ(mon.tier(), PressureTier::kCritical);
  mon.NoteQueueDepth(75, 100);  // 0.75 — critical exit is inclusive
  EXPECT_EQ(mon.tier(), PressureTier::kElevated);
  mon.NoteQueueDepth(0, 100);
  EXPECT_EQ(mon.tier(), PressureTier::kNormal);
  // Zero capacity reads as an idle queue, not a division by zero.
  mon.NoteQueueDepth(0, 0);
  EXPECT_EQ(mon.tier(), PressureTier::kNormal);
}

TEST(PressureMonitorTest, OverallTierIsMaxOfChannels) {
  PressureMonitor mon(BudgetConfig(1000));
  mon.AddBytes(1400);  // byte channel ELEVATED
  mon.NoteQueueDepth(100, 100);  // queue channel CRITICAL
  EXPECT_EQ(mon.tier(), PressureTier::kCritical);
  mon.NoteQueueDepth(0, 100);  // queue recovers; bytes still elevated
  EXPECT_EQ(mon.tier(), PressureTier::kElevated);
  mon.AddBytes(-400);
  EXPECT_EQ(mon.tier(), PressureTier::kNormal);
}

TEST(PressureMonitorTest, ConcurrentUpdatesKeepGaugeConsistent) {
  PressureMonitor mon(BudgetConfig(1 << 20));
  constexpr int kThreads = 4;
  constexpr int kIters = 5000;
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&mon] {
      for (int i = 0; i < kIters; ++i) {
        mon.AddBytes(64);
        mon.NoteQueueDepth(static_cast<std::size_t>(i % 50), 100);
        mon.AddBytes(-64);
      }
    });
  }
  for (auto& w : workers) w.join();
  EXPECT_EQ(mon.bytes(), 0u);
  EXPECT_EQ(mon.tier(), PressureTier::kNormal);
}

TEST(PressureAllocFaultTest, NoInjectorMeansNothingFires) {
  ASSERT_EQ(CurrentAllocationFaultInjector(), nullptr);
  EXPECT_FALSE(AllocationFaultFires(AllocSite::kAdmission, 128));
}

TEST(PressureAllocFaultTest, ScriptedIndexAndSiteRules) {
  ScriptedAllocationFaultInjector injector;
  ScopedAllocationFaultInjector scope(&injector);
  injector.FailAt(1);
  EXPECT_FALSE(AllocationFaultFires(AllocSite::kArenaBlock, 8));
  EXPECT_TRUE(AllocationFaultFires(AllocSite::kAdmission, 8));
  EXPECT_FALSE(AllocationFaultFires(AllocSite::kAdmission, 8));
  EXPECT_EQ(injector.ops_seen(), 3u);
  EXPECT_EQ(injector.ops_seen(AllocSite::kAdmission), 2u);
  EXPECT_EQ(injector.fired(), 1u);
  EXPECT_EQ(injector.fired_site(), AllocSite::kAdmission);

  injector.FailSite(AllocSite::kSnapshotExport, true);
  EXPECT_TRUE(AllocationFaultFires(AllocSite::kSnapshotExport, 0));
  EXPECT_FALSE(AllocationFaultFires(AllocSite::kFragmentAdmission, 0));
  injector.DisarmScript();
  EXPECT_FALSE(AllocationFaultFires(AllocSite::kSnapshotExport, 0));

  injector.Reset();
  EXPECT_EQ(injector.ops_seen(), 0u);
  EXPECT_EQ(injector.fired(), 0u);
}

TEST(PressureAllocFaultTest, ScopedInstallerRestoresPreviousHook) {
  ScriptedAllocationFaultInjector outer;
  ScopedAllocationFaultInjector outer_scope(&outer);
  {
    ScriptedAllocationFaultInjector inner;
    ScopedAllocationFaultInjector inner_scope(&inner);
    EXPECT_EQ(CurrentAllocationFaultInjector(), &inner);
  }
  EXPECT_EQ(CurrentAllocationFaultInjector(), &outer);
}

TEST(PressureAllocFaultTest, SiteNamesAreStable) {
  EXPECT_STREQ(AllocSiteName(AllocSite::kArenaBlock), "ArenaBlock");
  EXPECT_STREQ(AllocSiteName(AllocSite::kAdmission), "Admission");
  EXPECT_STREQ(AllocSiteName(AllocSite::kFragmentAdmission),
               "FragmentAdmission");
  EXPECT_STREQ(AllocSiteName(AllocSite::kSnapshotExport), "SnapshotExport");
}

}  // namespace
}  // namespace gcp
