// EpochManager unit tests: grace-period advance logic, no early
// reclamation while a reader is pinned, retire/collect bookkeeping, and a
// threaded publish/read storm whose payload integrity is oracle-checked
// (a freed-too-early payload trips the canary — and ASan — immediately).

#include "common/epoch.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <memory>
#include <thread>
#include <vector>

namespace gcp {
namespace {

constexpr std::uint64_t kAlive = 0xfeedfacecafebeefULL;

struct Payload {
  explicit Payload(std::uint64_t v) : value(v) {}
  ~Payload() { canary = 0; }
  std::uint64_t canary = kAlive;
  std::uint64_t value = 0;
};

TEST(EpochTest, CollectWithoutReadersFreesImmediately) {
  EpochManager epochs;
  bool deleted = false;
  epochs.Retire(&deleted, [](void* p) { *static_cast<bool*>(p) = true; });
  // Retire() already attempts a collect; with no pinned reader the object
  // is past its grace period at once.
  EXPECT_TRUE(deleted);
  EXPECT_EQ(epochs.retired_pending(), 0u);
  EXPECT_EQ(epochs.reclaimed(), 1u);
}

TEST(EpochTest, PinnedReaderBlocksReclamation) {
  EpochManager epochs;
  EpochManager::Guard guard = epochs.Pin();
  ASSERT_TRUE(guard.pinned());
  EXPECT_EQ(epochs.pinned_readers(), 1u);

  bool deleted = false;
  epochs.Retire(&deleted, [](void* p) { *static_cast<bool*>(p) = true; });
  // The reader was pinned at (or before) the retire epoch: the object
  // must survive every collect attempt until the reader unpins.
  epochs.Collect();
  EXPECT_FALSE(deleted);
  EXPECT_EQ(epochs.retired_pending(), 1u);

  guard.Release();
  EXPECT_FALSE(guard.pinned());
  epochs.Collect();
  EXPECT_TRUE(deleted);
  EXPECT_EQ(epochs.retired_pending(), 0u);
}

TEST(EpochTest, LateReaderDoesNotBlockEarlierRetire) {
  EpochManager epochs;
  bool deleted = false;
  // Retire with no readers; the object is freed inside Retire. A reader
  // pinning afterwards must not resurrect anything or block future
  // collects.
  epochs.Retire(&deleted, [](void* p) { *static_cast<bool*>(p) = true; });
  ASSERT_TRUE(deleted);

  EpochManager::Guard guard = epochs.Pin();
  bool second = false;
  epochs.Retire(&second, [](void* p) { *static_cast<bool*>(p) = true; });
  EXPECT_FALSE(second);  // the pinned reader could still hold it
  guard.Release();
  epochs.Collect();
  EXPECT_TRUE(second);
}

TEST(EpochTest, AdvanceRequiresEveryPinnedReaderCurrent) {
  EpochManager epochs;
  EpochManager::Guard old_reader = epochs.Pin();
  const std::uint64_t e0 = epochs.global_epoch();
  // The pinned reader observed the current epoch, so collects may keep
  // advancing past it — but reclamation stays blocked at its pin.
  epochs.Collect();
  EXPECT_GT(epochs.global_epoch(), e0);
  const std::uint64_t advanced = epochs.global_epoch();
  // A second collect: the old reader's pinned epoch now lags the global
  // one, so no further advance happens until it unpins.
  epochs.Collect();
  EXPECT_EQ(epochs.global_epoch(), advanced);
  old_reader.Release();
  epochs.Collect();
  EXPECT_GT(epochs.global_epoch(), advanced);
}

TEST(EpochTest, GuardMoveTransfersOwnership) {
  EpochManager epochs;
  EpochManager::Guard a = epochs.Pin();
  EXPECT_EQ(epochs.pinned_readers(), 1u);
  EpochManager::Guard b = std::move(a);
  EXPECT_FALSE(a.pinned());
  EXPECT_TRUE(b.pinned());
  EXPECT_EQ(epochs.pinned_readers(), 1u);
  b.Release();
  EXPECT_EQ(epochs.pinned_readers(), 0u);
}

TEST(EpochTest, DestructorFreesPending) {
  bool deleted = false;
  {
    EpochManager epochs;
    EpochManager::Guard guard = epochs.Pin();
    epochs.Retire(&deleted, [](void* p) { *static_cast<bool*>(p) = true; });
    EXPECT_FALSE(deleted);
    guard.Release();
    // Destructor must free everything still retired even without an
    // explicit Collect.
  }
  EXPECT_TRUE(deleted);
}

TEST(EpochTest, TypedRetireDeletesWithCorrectType) {
  EpochManager epochs;
  epochs.Retire(new Payload(7));  // freed via delete inside Retire
  EXPECT_EQ(epochs.reclaimed(), 1u);
}

// The no-UAF oracle: readers continuously pin, load the published
// pointer, and validate the canary; a writer keeps swapping payloads and
// retiring predecessors. A reclamation-order bug makes a reader observe a
// dead canary (and ASan reports the use-after-free outright).
TEST(EpochTest, PublishRetireStormKeepsPayloadsAlive) {
  EpochManager epochs;
  std::atomic<Payload*> published{new Payload(0)};
  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> reads{0};
  std::atomic<std::uint64_t> corrupt{0};

  constexpr std::size_t kReaders = 4;
  std::vector<std::thread> readers;
  for (std::size_t t = 0; t < kReaders; ++t) {
    readers.emplace_back([&] {
      while (!stop.load(std::memory_order_acquire)) {
        EpochManager::Guard guard = epochs.Pin();
        const Payload* p = published.load(std::memory_order_seq_cst);
        if (p->canary != kAlive) corrupt.fetch_add(1);
        reads.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }

  constexpr std::uint64_t kSwaps = 2000;
  std::uint64_t swapped = 0;
  auto swap_once = [&] {
    Payload* next = new Payload(++swapped);
    Payload* prev = published.exchange(next, std::memory_order_seq_cst);
    epochs.Retire(prev);
  };
  for (std::uint64_t i = 1; i <= kSwaps; ++i) swap_once();
  // On a 1-core box the writer can finish before any reader is ever
  // scheduled — keep swapping until readers demonstrably overlapped.
  while (reads.load(std::memory_order_relaxed) < 16) {
    swap_once();
    std::this_thread::yield();
  }
  stop.store(true, std::memory_order_release);
  for (auto& r : readers) r.join();

  EXPECT_EQ(corrupt.load(), 0u);
  // All readers unpinned: one collect must flush everything retired.
  epochs.Collect();
  EXPECT_EQ(epochs.retired_pending(), 0u);
  EXPECT_EQ(epochs.reclaimed(), swapped);
  // Final payload is still published (never retired).
  delete published.load();
}

}  // namespace
}  // namespace gcp
