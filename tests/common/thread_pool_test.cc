#include "common/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <thread>
#include <vector>

namespace gcp {
namespace {

TEST(ThreadPoolTest, ExecutesSubmittedTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&counter] { counter.fetch_add(1); });
  }
  pool.WaitIdle();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPoolTest, AtLeastOneWorker) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.num_threads(), 1u);
  std::atomic<int> counter{0};
  pool.Submit([&counter] { counter.fetch_add(1); });
  pool.WaitIdle();
  EXPECT_EQ(counter.load(), 1);
}

TEST(ThreadPoolTest, ParallelForCoversAllIndices) {
  ThreadPool pool(3);
  std::vector<std::atomic<int>> touched(1000);
  pool.ParallelFor(1000, [&](std::size_t i) { touched[i].fetch_add(1); });
  for (const auto& t : touched) EXPECT_EQ(t.load(), 1);
}

TEST(ThreadPoolTest, ParallelForZeroAndOne) {
  ThreadPool pool(2);
  pool.ParallelFor(0, [](std::size_t) { FAIL() << "must not be called"; });
  int calls = 0;
  pool.ParallelFor(1, [&](std::size_t i) {
    EXPECT_EQ(i, 0u);
    ++calls;
  });
  EXPECT_EQ(calls, 1);
}

TEST(ThreadPoolTest, ParallelForComputesSum) {
  ThreadPool pool(4);
  std::vector<long> values(5000);
  pool.ParallelFor(values.size(),
                   [&](std::size_t i) { values[i] = static_cast<long>(i); });
  const long sum = std::accumulate(values.begin(), values.end(), 0L);
  EXPECT_EQ(sum, 5000L * 4999L / 2);
}

TEST(ThreadPoolTest, WaitIdleWithNoTasksReturns) {
  ThreadPool pool(2);
  pool.WaitIdle();  // must not hang
  SUCCEED();
}

TEST(ThreadPoolTest, DestructorDrainsCleanly) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 10; ++i) {
      pool.Submit([&counter] { counter.fetch_add(1); });
    }
    pool.WaitIdle();
  }
  EXPECT_EQ(counter.load(), 10);
}

TEST(ThreadPoolTest, NestedSubmitFromTask) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  pool.Submit([&] {
    counter.fetch_add(1);
    pool.Submit([&counter] { counter.fetch_add(1); });
  });
  pool.WaitIdle();
  EXPECT_EQ(counter.load(), 2);
}

TEST(ThreadPoolTest, SubmitAcceptedWhileRunning) {
  ThreadPool pool(2);
  EXPECT_TRUE(pool.Submit([] {}));
  pool.WaitIdle();
}

TEST(ThreadPoolTest, SubmitRejectedDuringShutdown) {
  // A task that outlives the destructor's shutdown flag tries to enqueue
  // follow-up work; the pool must reject it instead of leaving it queued
  // on a draining pool.
  std::atomic<bool> rejected{false};
  std::atomic<bool> entered{false};
  {
    ThreadPool pool(1);
    pool.Submit([&] {
      entered.store(true);
      // Wait until the destructor raised shutting_down_.
      while (pool.Submit([] {})) {
        std::this_thread::yield();
      }
      rejected.store(true);
    });
    while (!entered.load()) std::this_thread::yield();
    // Destructor runs now, flips shutting_down_, and joins.
  }
  EXPECT_TRUE(rejected.load());
}

TEST(ThreadPoolTest, WaitIdleRethrowsTaskException) {
  ThreadPool pool(2);
  std::atomic<int> completed{0};
  pool.Submit([] { throw std::runtime_error("task boom"); });
  for (int i = 0; i < 8; ++i) {
    pool.Submit([&completed] { completed.fetch_add(1); });
  }
  EXPECT_THROW(pool.WaitIdle(), std::runtime_error);
  // The error is consumed: the pool is reusable afterwards.
  pool.Submit([&completed] { completed.fetch_add(1); });
  pool.WaitIdle();
  EXPECT_EQ(completed.load(), 9);
}

TEST(ThreadPoolTest, ParallelForPropagatesException) {
  ThreadPool pool(4);
  std::atomic<int> calls{0};
  EXPECT_THROW(pool.ParallelFor(64,
                                [&](std::size_t i) {
                                  calls.fetch_add(1);
                                  if (i == 5) {
                                    throw std::runtime_error("shard boom");
                                  }
                                }),
               std::runtime_error);
  // Pool stays usable: in_flight bookkeeping survived the exception.
  pool.ParallelFor(10, [&](std::size_t) { calls.fetch_add(1); });
  pool.WaitIdle();
  EXPECT_GE(calls.load(), 10);
}

TEST(ThreadPoolTest, ParallelForInlineExceptionForSingleItem) {
  ThreadPool pool(3);
  EXPECT_THROW(
      pool.ParallelFor(1, [](std::size_t) { throw std::logic_error("n=1"); }),
      std::logic_error);
}

}  // namespace
}  // namespace gcp
