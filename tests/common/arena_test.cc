#include "common/arena.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <vector>

#include "common/alloc_fault.hpp"

namespace gcp {
namespace {

TEST(ArenaTest, BumpsWithinOneBlock) {
  Arena arena(1024);
  auto* a = arena.AllocateArray<std::uint64_t>(4);
  auto* b = arena.AllocateArray<std::uint64_t>(4);
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);
  EXPECT_EQ(b, a + 4);  // contiguous bumps, no per-allocation headers
  EXPECT_EQ(arena.NumBlocks(), 1u);
  EXPECT_EQ(arena.BytesInUse(), 8 * sizeof(std::uint64_t));
}

TEST(ArenaTest, RespectsAlignment) {
  Arena arena(1024);
  arena.Allocate(1, 1);
  void* p = arena.Allocate(8, 8);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(p) % 8, 0u);
  void* q = arena.Allocate(16, alignof(std::max_align_t));
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(q) %
                alignof(std::max_align_t),
            0u);
}

TEST(ArenaTest, GrowsAcrossBlocksAndOversized) {
  Arena arena(64);
  arena.Allocate(48, 8);
  arena.Allocate(48, 8);  // forces a second block
  EXPECT_GE(arena.NumBlocks(), 2u);
  // A request larger than the block size gets a dedicated block.
  auto* big = static_cast<std::byte*>(arena.Allocate(1000, 8));
  std::memset(big, 0xAB, 1000);
  EXPECT_EQ(static_cast<unsigned char>(big[999]), 0xABu);
}

TEST(ArenaTest, RewindReleasesAndReusesStorage) {
  Arena arena(256);
  const Arena::Checkpoint start = arena.Mark();
  auto* a = arena.AllocateArray<std::uint32_t>(8);
  a[0] = 7;
  const Arena::Checkpoint mid = arena.Mark();
  arena.AllocateArray<std::uint32_t>(100);  // spills to another block
  arena.Rewind(mid);
  EXPECT_EQ(arena.BytesInUse(), 8 * sizeof(std::uint32_t));
  // Storage after the checkpoint is reused in place.
  auto* b = arena.AllocateArray<std::uint32_t>(8);
  EXPECT_EQ(b, a + 8);
  arena.Rewind(start);
  EXPECT_EQ(arena.BytesInUse(), 0u);
  const std::size_t blocks = arena.NumBlocks();
  arena.AllocateArray<std::uint32_t>(100);
  EXPECT_EQ(arena.NumBlocks(), blocks);  // blocks were retained
}

TEST(ArenaTest, NestedScratchArraysAreLifo) {
  Arena arena(128);
  {
    ScratchArray<int> outer(&arena, 10, -1);
    {
      ScratchArray<int> inner(&arena, 200, 3);  // forces block growth
      EXPECT_EQ(inner[199], 3);
      EXPECT_EQ(outer[9], -1);
    }
    EXPECT_EQ(arena.BytesInUse(), 10 * sizeof(int));
    EXPECT_EQ(outer[0], -1);
  }
  EXPECT_EQ(arena.BytesInUse(), 0u);
}

TEST(ArenaTest, ScratchArrayHeapFallback) {
  ScratchArray<int> heap(nullptr, 5, 42);
  EXPECT_EQ(heap.size(), 5u);
  EXPECT_EQ(heap[4], 42);
}

TEST(ArenaTest, ThreadArenaHonoursEnableToggle) {
  ASSERT_TRUE(ArenaEnabled());
  Arena* a = ThreadArena();
  ASSERT_NE(a, nullptr);
  EXPECT_EQ(ThreadArena(), a);  // stable per thread
  SetArenaEnabled(false);
  EXPECT_EQ(ThreadArena(), nullptr);
  SetArenaEnabled(true);
  EXPECT_EQ(ThreadArena(), a);
}

TEST(ArenaTest, TryAllocateFailsOnlyOnInjectedBlockGrowth) {
  Arena arena(128);
  ScriptedAllocationFaultInjector injector;
  ScopedAllocationFaultInjector scope(&injector);
  injector.FailSite(AllocSite::kArenaBlock, true);
  // No fresh block needed yet on the never-failing path.
  void* warm = arena.Allocate(32, 8);
  ASSERT_NE(warm, nullptr);
  // Bumping within the existing block never consults the injector.
  EXPECT_NE(arena.TryAllocate(32, 8), nullptr);
  const std::size_t in_use = arena.BytesInUse();
  // Growth would need a new block: the injected failure surfaces as
  // nullptr and leaves the bump position untouched.
  EXPECT_EQ(arena.TryAllocate(4096, 8), nullptr);
  EXPECT_EQ(arena.BytesInUse(), in_use);
  EXPECT_EQ(injector.fired_site(), AllocSite::kArenaBlock);
  injector.DisarmScript();
  EXPECT_NE(arena.TryAllocate(4096, 8), nullptr);
}

TEST(ArenaTest, PlainAllocateNeverFailsUnderInjection) {
  Arena arena(128);
  ScriptedAllocationFaultInjector injector;
  ScopedAllocationFaultInjector scope(&injector);
  injector.FailSite(AllocSite::kArenaBlock, true);
  // The never-null contract of Allocate is unaffected by the injector.
  EXPECT_NE(arena.Allocate(4096, 8), nullptr);
}

TEST(ArenaTest, ScratchArrayDegradesToHeapOnInjectedOom) {
  Arena arena(128);
  ScriptedAllocationFaultInjector injector;
  ScopedAllocationFaultInjector scope(&injector);
  injector.FailSite(AllocSite::kArenaBlock, true);
  const std::size_t in_use = arena.BytesInUse();
  {
    // Needs a fresh block → injected failure → silent heap fallback.
    ScratchArray<int> scratch(&arena, 1000, 9);
    EXPECT_EQ(scratch[999], 9);
    EXPECT_EQ(arena.BytesInUse(), in_use);
  }
  EXPECT_GT(injector.fired(), 0u);
  EXPECT_EQ(arena.BytesInUse(), in_use);
}

TEST(ArenaTest, ArenaAllocatorWorksWithVector) {
  Arena arena;
  const Arena::Checkpoint start = arena.Mark();
  {
    std::vector<int, ArenaAllocator<int>> v{ArenaAllocator<int>(&arena)};
    for (int i = 0; i < 1000; ++i) v.push_back(i);
    EXPECT_EQ(v[999], 999);
    EXPECT_GT(arena.BytesInUse(), 1000 * sizeof(int) / 2);
  }
  arena.Rewind(start);
  EXPECT_EQ(arena.BytesInUse(), 0u);
}

}  // namespace
}  // namespace gcp
