#include "common/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

namespace gcp {
namespace {

TEST(RngTest, DeterministicForSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.Next() == b.Next()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(RngTest, UniformBelowInRange) {
  Rng rng(5);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.UniformBelow(17), 17u);
  }
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(rng.UniformBelow(1), 0u);
  }
}

TEST(RngTest, UniformBelowRoughlyUniform) {
  Rng rng(9);
  std::vector<int> counts(10, 0);
  const int n = 100000;
  for (int i = 0; i < n; ++i) ++counts[rng.UniformBelow(10)];
  for (const int c : counts) {
    EXPECT_GT(c, n / 10 - n / 50);
    EXPECT_LT(c, n / 10 + n / 50);
  }
}

TEST(RngTest, UniformIntInclusiveBounds) {
  Rng rng(11);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 10000; ++i) {
    const auto v = rng.UniformInt(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= (v == -3);
    saw_hi |= (v == 3);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, UniformDoubleInUnitInterval) {
  Rng rng(13);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    const double d = rng.UniformDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
    sum += d;
  }
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(RngTest, BernoulliMatchesProbability) {
  Rng rng(17);
  int heads = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) heads += rng.Bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(heads) / n, 0.3, 0.01);
}

TEST(RngTest, NormalMoments) {
  Rng rng(19);
  const int n = 200000;
  double sum = 0.0, sum2 = 0.0;
  for (int i = 0; i < n; ++i) {
    const double x = rng.Normal(10.0, 2.0);
    sum += x;
    sum2 += x * x;
  }
  const double mean = sum / n;
  const double var = sum2 / n - mean * mean;
  EXPECT_NEAR(mean, 10.0, 0.05);
  EXPECT_NEAR(var, 4.0, 0.1);
}

TEST(RngTest, ShufflePreservesMultiset) {
  Rng rng(23);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8, 9};
  std::vector<int> orig = v;
  rng.Shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, orig);
}

TEST(RngTest, ShuffleActuallyPermutes) {
  Rng rng(29);
  std::vector<int> v(50);
  for (int i = 0; i < 50; ++i) v[i] = i;
  const std::vector<int> orig = v;
  rng.Shuffle(v);
  EXPECT_NE(v, orig);  // astronomically unlikely to be identity
}

TEST(RngTest, ChoicePicksExistingElements) {
  Rng rng(31);
  const std::vector<int> v{7, 8, 9};
  std::set<int> seen;
  for (int i = 0; i < 200; ++i) seen.insert(rng.Choice(v));
  EXPECT_EQ(seen, (std::set<int>{7, 8, 9}));
}

TEST(RngTest, ForkIsIndependent) {
  Rng parent(37);
  Rng child = parent.Fork();
  // The child stream should not replicate the parent stream.
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (parent.Next() == child.Next()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(RngTest, SatisfiesUniformRandomBitGenerator) {
  static_assert(std::uniform_random_bit_generator<Rng>);
  SUCCEED();
}

}  // namespace
}  // namespace gcp
