#include "common/mpsc_queue.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <thread>
#include <vector>

namespace gcp {
namespace {

TEST(MpscQueueTest, PushDrainPreservesFifoOrder) {
  BoundedMpscQueue<int> q(8);
  for (int i = 0; i < 5; ++i) EXPECT_TRUE(q.TryPush(int(i)));
  EXPECT_EQ(q.size(), 5u);
  const std::vector<int> drained = q.DrainAll();
  EXPECT_EQ(drained, (std::vector<int>{0, 1, 2, 3, 4}));
  EXPECT_TRUE(q.empty());
}

TEST(MpscQueueTest, TryPushFailsAtCapacityAndLeavesItemIntact) {
  BoundedMpscQueue<std::vector<int>> q(2);
  EXPECT_TRUE(q.TryPush(std::vector<int>{1}));
  EXPECT_TRUE(q.TryPush(std::vector<int>{2}));
  std::vector<int> rejected{3, 4, 5};
  EXPECT_FALSE(q.TryPush(std::move(rejected)));
  // The rejected item must not have been moved-from.
  EXPECT_EQ(rejected.size(), 3u);
  EXPECT_EQ(q.size(), 2u);
  q.DrainAll();
  EXPECT_TRUE(q.TryPush(std::move(rejected)));
}

TEST(MpscQueueTest, ZeroCapacityClampsToOne) {
  BoundedMpscQueue<int> q(0);
  EXPECT_EQ(q.capacity(), 1u);
  EXPECT_TRUE(q.TryPush(7));
  EXPECT_FALSE(q.TryPush(8));
}

TEST(MpscQueueTest, DrainOnEmptyReturnsNothing) {
  BoundedMpscQueue<int> q(4);
  EXPECT_TRUE(q.DrainAll().empty());
}

TEST(MpscQueueTest, ConcurrentProducersLoseNoAcceptedItem) {
  constexpr int kProducers = 4;
  constexpr int kPerProducer = 2000;
  BoundedMpscQueue<int> q(64);
  std::atomic<int> accepted{0};
  std::vector<int> drained;
  std::atomic<bool> done{false};

  std::thread consumer([&] {
    while (!done.load() || q.size() > 0) {
      for (int v : q.DrainAll()) drained.push_back(v);
      std::this_thread::yield();
    }
  });
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      for (int i = 0; i < kPerProducer; ++i) {
        if (q.TryPush(p * kPerProducer + i)) accepted.fetch_add(1);
      }
    });
  }
  for (auto& t : producers) t.join();
  done.store(true);
  consumer.join();
  for (int v : q.DrainAll()) drained.push_back(v);

  EXPECT_EQ(drained.size(), static_cast<std::size_t>(accepted.load()));
  // No duplicates: every drained value is unique.
  std::sort(drained.begin(), drained.end());
  EXPECT_TRUE(std::adjacent_find(drained.begin(), drained.end()) ==
              drained.end());
}

}  // namespace
}  // namespace gcp
