#include "common/status.hpp"

#include <gtest/gtest.h>

namespace gcp {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, FactoryConstructorsCarryCodeAndMessage) {
  const Status s = Status::InvalidArgument("bad knob");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad knob");
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad knob");
}

TEST(StatusTest, AllErrorFactoriesProduceDistinctCodes) {
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::AlreadyExists("x").code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::FailedPrecondition("x").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(Status::IOError("x").code(), StatusCode::kIOError);
  EXPECT_EQ(Status::Corruption("x").code(), StatusCode::kCorruption);
  EXPECT_EQ(Status::Unimplemented("x").code(), StatusCode::kUnimplemented);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::NotFound("a"), Status::NotFound("a"));
  EXPECT_FALSE(Status::NotFound("a") == Status::NotFound("b"));
  EXPECT_FALSE(Status::NotFound("a") == Status::IOError("a"));
  EXPECT_EQ(Status::OK(), Status());
}

TEST(StatusTest, StatusCodeNamesAreStable) {
  EXPECT_EQ(StatusCodeName(StatusCode::kOk), "OK");
  EXPECT_EQ(StatusCodeName(StatusCode::kCorruption), "Corruption");
}

Status FailsFirst() { return Status::IOError("disk"); }

Status Caller() {
  GCP_RETURN_NOT_OK(FailsFirst());
  return Status::Internal("unreachable");
}

TEST(StatusTest, ReturnNotOkMacroPropagates) {
  EXPECT_EQ(Caller(), Status::IOError("disk"));
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::NotFound("nope"));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(r.value_or(-1), -1);
}

TEST(ResultTest, ValueOrReturnsValueWhenOk) {
  Result<std::string> r(std::string("hello"));
  EXPECT_EQ(r.value_or("fallback"), "hello");
}

TEST(ResultTest, MoveOutValue) {
  Result<std::vector<int>> r(std::vector<int>{1, 2, 3});
  std::vector<int> v = std::move(r).value();
  EXPECT_EQ(v.size(), 3u);
}

}  // namespace
}  // namespace gcp
