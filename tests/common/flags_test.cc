#include "common/flags.hpp"

#include <gtest/gtest.h>

namespace gcp {
namespace {

Flags ParseArgs(std::initializer_list<const char*> args) {
  std::vector<const char*> argv{"prog"};
  argv.insert(argv.end(), args.begin(), args.end());
  return Flags::Parse(static_cast<int>(argv.size()), argv.data());
}

TEST(FlagsTest, EqualsForm) {
  const Flags f = ParseArgs({"--graphs=500", "--alpha=1.4"});
  EXPECT_EQ(f.GetInt("graphs", 0), 500);
  EXPECT_DOUBLE_EQ(f.GetDouble("alpha", 0.0), 1.4);
}

TEST(FlagsTest, SpaceSeparatedForm) {
  const Flags f = ParseArgs({"--queries", "1000", "--name", "fig4"});
  EXPECT_EQ(f.GetInt("queries", 0), 1000);
  EXPECT_EQ(f.GetString("name", ""), "fig4");
}

TEST(FlagsTest, BooleanForm) {
  const Flags f = ParseArgs({"--quick", "--full=false"});
  EXPECT_TRUE(f.GetBool("quick", false));
  EXPECT_FALSE(f.GetBool("full", true));
  EXPECT_TRUE(f.GetBool("absent", true));
  EXPECT_FALSE(f.GetBool("absent", false));
}

TEST(FlagsTest, BooleanTrueSpellings) {
  EXPECT_TRUE(ParseArgs({"--x=1"}).GetBool("x", false));
  EXPECT_TRUE(ParseArgs({"--x=true"}).GetBool("x", false));
  EXPECT_TRUE(ParseArgs({"--x=yes"}).GetBool("x", false));
  EXPECT_TRUE(ParseArgs({"--x=on"}).GetBool("x", false));
  EXPECT_FALSE(ParseArgs({"--x=0"}).GetBool("x", true));
}

TEST(FlagsTest, DefaultsWhenAbsent) {
  const Flags f = ParseArgs({});
  EXPECT_EQ(f.GetInt("k", 7), 7);
  EXPECT_DOUBLE_EQ(f.GetDouble("d", 2.5), 2.5);
  EXPECT_EQ(f.GetString("s", "dflt"), "dflt");
  EXPECT_FALSE(f.Has("k"));
}

TEST(FlagsTest, MalformedNumbersFallBack) {
  const Flags f = ParseArgs({"--n=abc", "--d=1.2.3"});
  EXPECT_EQ(f.GetInt("n", -1), -1);
  EXPECT_DOUBLE_EQ(f.GetDouble("d", -2.0), -2.0);
}

TEST(FlagsTest, PositionalArguments) {
  const Flags f = ParseArgs({"input.txt", "--k=1", "output.txt"});
  ASSERT_EQ(f.positional().size(), 2u);
  EXPECT_EQ(f.positional()[0], "input.txt");
  EXPECT_EQ(f.positional()[1], "output.txt");
}

TEST(FlagsTest, LastDuplicateWins) {
  const Flags f = ParseArgs({"--k=1", "--k=2"});
  EXPECT_EQ(f.GetInt("k", 0), 2);
}

TEST(FlagsTest, RequireKnownAcceptsKnown) {
  const Flags f = ParseArgs({"--a=1", "--b=2"});
  EXPECT_TRUE(f.RequireKnown({"a", "b", "c"}).ok());
}

TEST(FlagsTest, RequireKnownRejectsUnknown) {
  const Flags f = ParseArgs({"--a=1", "--typo=2"});
  const Status s = f.RequireKnown({"a"});
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(s.message().find("typo"), std::string::npos);
}

TEST(FlagsTest, NegativeNumericValueAfterSpace) {
  // "--k -3" : "-3" does not start with "--", so it is the value.
  const Flags f = ParseArgs({"--k", "-3"});
  EXPECT_EQ(f.GetInt("k", 0), -3);
}

}  // namespace
}  // namespace gcp
