#include "ftv/ftv_index.hpp"

#include <gtest/gtest.h>

#include "../test_util.hpp"
#include "dataset/aids_like.hpp"
#include "match/matcher.hpp"

namespace gcp {
namespace {

using testing::MakeCycle;
using testing::MakePath;
using testing::MakeSingleton;

GraphDataset SmallDataset() {
  GraphDataset ds;
  ds.Bootstrap({
      MakePath({0, 1}),      // 0: C-O
      MakePath({0, 0, 1}),   // 1: C-C-O
      MakeCycle({0, 0, 0}),  // 2: C-ring
      MakeSingleton(2),      // 3: N
  });
  return ds;
}

TEST(FtvIndexTest, BuildsSummariesForLiveGraphs) {
  const GraphDataset ds = SmallDataset();
  const FtvIndex index(ds);
  EXPECT_EQ(index.IndexedCount(), 4u);
  EXPECT_TRUE(index.InSync());
  ASSERT_NE(index.SummaryOf(0), nullptr);
  EXPECT_EQ(index.SummaryOf(0)->num_edges, 1u);
  EXPECT_EQ(index.SummaryOf(9), nullptr);
}

TEST(FtvIndexTest, SubgraphCandidatesAreSoundAndFiltering) {
  const GraphDataset ds = SmallDataset();
  const FtvIndex index(ds);
  const GraphFeatures qf = GraphFeatures::Extract(MakePath({0, 1}));
  const DynamicBitset cands =
      index.CandidateSet(qf, FtvQueryDirection::kSubgraph);
  // True answers {0, 1} must pass; 2 (no O) and 3 (no edge) must not.
  EXPECT_TRUE(cands.Test(0));
  EXPECT_TRUE(cands.Test(1));
  EXPECT_FALSE(cands.Test(2));
  EXPECT_FALSE(cands.Test(3));
}

TEST(FtvIndexTest, SupergraphDirectionFiltersContained) {
  const GraphDataset ds = SmallDataset();
  const FtvIndex index(ds);
  const GraphFeatures qf = GraphFeatures::Extract(MakePath({0, 0, 1}));
  const DynamicBitset cands =
      index.CandidateSet(qf, FtvQueryDirection::kSupergraph);
  EXPECT_TRUE(cands.Test(0));   // C-O ⊆ C-C-O
  EXPECT_TRUE(cands.Test(1));   // itself
  EXPECT_FALSE(cands.Test(2));  // triangle needs 3 edges among C's
  EXPECT_FALSE(cands.Test(3));  // N not present in query
}

TEST(FtvIndexTest, IncrementalAddIndexesNewGraph) {
  GraphDataset ds = SmallDataset();
  FtvIndex index(ds);
  const GraphId id = ds.AddGraph(MakePath({1, 0, 1}));
  EXPECT_FALSE(index.InSync());
  EXPECT_EQ(index.SyncWithDataset(), 1u);
  EXPECT_TRUE(index.InSync());
  ASSERT_NE(index.SummaryOf(id), nullptr);
  const GraphFeatures qf = GraphFeatures::Extract(MakePath({0, 1}));
  EXPECT_TRUE(
      index.CandidateSet(qf, FtvQueryDirection::kSubgraph).Test(id));
}

TEST(FtvIndexTest, IncrementalDeleteDropsGraph) {
  GraphDataset ds = SmallDataset();
  FtvIndex index(ds);
  ds.DeleteGraph(0).ok();
  index.SyncWithDataset();
  EXPECT_EQ(index.SummaryOf(0), nullptr);
  EXPECT_EQ(index.IndexedCount(), 3u);
  const GraphFeatures qf = GraphFeatures::Extract(MakePath({0, 1}));
  EXPECT_FALSE(
      index.CandidateSet(qf, FtvQueryDirection::kSubgraph).Test(0));
}

TEST(FtvIndexTest, IncrementalEdgeEditRederivesSummary) {
  GraphDataset ds = SmallDataset();
  FtvIndex index(ds);
  // Graph 3 is a lone N; UA is impossible there. Edit graph 1 instead:
  // remove the C-O edge — queries needing a (C,O) edge must lose it.
  ds.RemoveEdge(1, 1, 2).ok();
  index.SyncWithDataset();
  const GraphFeatures qf = GraphFeatures::Extract(MakePath({0, 1}));
  EXPECT_FALSE(
      index.CandidateSet(qf, FtvQueryDirection::kSubgraph).Test(1));
  // And back: UA restores it.
  ds.AddEdge(1, 1, 2).ok();
  index.SyncWithDataset();
  EXPECT_TRUE(
      index.CandidateSet(qf, FtvQueryDirection::kSubgraph).Test(1));
}

TEST(FtvIndexTest, CoalescesMultipleOpsPerGraph) {
  GraphDataset ds = SmallDataset();
  FtvIndex index(ds);
  ds.RemoveEdge(1, 0, 1).ok();
  ds.AddEdge(1, 0, 1).ok();
  ds.RemoveEdge(1, 1, 2).ok();
  // Three ops, one touched graph: exactly one summary re-derivation.
  EXPECT_EQ(index.SyncWithDataset(), 1u);
}

TEST(FtvIndexTest, SyncIsIdempotent) {
  GraphDataset ds = SmallDataset();
  FtvIndex index(ds);
  ds.AddGraph(MakePath({2, 2}));
  EXPECT_EQ(index.SyncWithDataset(), 1u);
  EXPECT_EQ(index.SyncWithDataset(), 0u);
}

// Property: incremental maintenance must be indistinguishable from a
// full rebuild, and the filter must never drop a true answer.
TEST(FtvIndexTest, IncrementalEqualsRebuildUnderRandomChanges) {
  AidsLikeOptions opts;
  opts.num_graphs = 40;
  opts.mean_vertices = 10;
  opts.stddev_vertices = 3;
  opts.min_vertices = 5;
  opts.max_vertices = 18;
  opts.num_labels = 6;
  opts.seed = 9;
  const auto initial = AidsLikeGenerator(opts).Generate();
  GraphDataset ds;
  ds.Bootstrap(initial);
  FtvIndex incremental(ds);

  Rng rng(10);
  const auto matcher = MakeMatcher(MatcherKind::kVf2Plus);
  for (int round = 0; round < 15; ++round) {
    // A small random batch of changes.
    for (int op = 0; op < 4; ++op) {
      const auto live = ds.LiveIds();
      if (live.empty()) break;
      switch (rng.UniformBelow(4)) {
        case 0:
          ds.AddGraph(initial[rng.UniformBelow(initial.size())]);
          break;
        case 1:
          ds.DeleteGraph(live[rng.UniformBelow(live.size())]).ok();
          break;
        case 2: {
          const GraphId id = live[rng.UniformBelow(live.size())];
          const auto non_edges = ds.graph(id).NonEdges();
          if (!non_edges.empty()) {
            const auto& [u, v] =
                non_edges[rng.UniformBelow(non_edges.size())];
            ds.AddEdge(id, u, v).ok();
          }
          break;
        }
        default: {
          const GraphId id = live[rng.UniformBelow(live.size())];
          const auto edges = ds.graph(id).Edges();
          if (!edges.empty()) {
            const auto& [u, v] = edges[rng.UniformBelow(edges.size())];
            ds.RemoveEdge(id, u, v).ok();
          }
          break;
        }
      }
    }
    incremental.SyncWithDataset();
    const FtvIndex rebuilt(ds);

    // Same candidate sets for a random probe, both directions.
    const auto live = ds.LiveIds();
    const Graph& src = ds.graph(live[rng.UniformBelow(live.size())]);
    const GraphFeatures probe = GraphFeatures::Extract(src);
    for (const auto dir :
         {FtvQueryDirection::kSubgraph, FtvQueryDirection::kSupergraph}) {
      EXPECT_EQ(incremental.CandidateSet(probe, dir),
                rebuilt.CandidateSet(probe, dir));
    }
    // Soundness: every true subgraph-query answer passes the filter.
    const DynamicBitset cands =
        incremental.CandidateSet(probe, FtvQueryDirection::kSubgraph);
    for (const GraphId id : live) {
      if (matcher->Contains(src, ds.graph(id))) {
        EXPECT_TRUE(cands.Test(id))
            << "FTV filter dropped a true answer (graph " << id << ")";
      }
    }
  }
}

}  // namespace
}  // namespace gcp
