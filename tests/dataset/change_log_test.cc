#include "dataset/change_log.hpp"

#include <gtest/gtest.h>

namespace gcp {
namespace {

TEST(ChangeLogTest, StartsEmpty) {
  const ChangeLog log;
  EXPECT_EQ(log.size(), 0u);
  EXPECT_EQ(log.LatestSeq(), 0u);
  EXPECT_FALSE(log.HasChangesSince(0));
  EXPECT_TRUE(log.ExtractSince(0).empty());
}

TEST(ChangeLogTest, AppendAssignsDenseSequence) {
  ChangeLog log;
  EXPECT_EQ(log.Append(ChangeType::kAdd, 0), 1u);
  EXPECT_EQ(log.Append(ChangeType::kDelete, 0), 2u);
  EXPECT_EQ(log.Append(ChangeType::kEdgeAdd, 1, 2, 3), 3u);
  EXPECT_EQ(log.LatestSeq(), 3u);
  EXPECT_EQ(log.size(), 3u);
}

TEST(ChangeLogTest, RecordsCarryPayload) {
  ChangeLog log;
  log.Append(ChangeType::kEdgeRemove, 7, 1, 4);
  const ChangeRecord& r = log.records()[0];
  EXPECT_EQ(r.type, ChangeType::kEdgeRemove);
  EXPECT_EQ(r.graph_id, 7u);
  EXPECT_EQ(r.edge_u, 1u);
  EXPECT_EQ(r.edge_v, 4u);
  EXPECT_EQ(r.seq, 1u);
}

TEST(ChangeLogTest, ExtractSinceWatermark) {
  ChangeLog log;
  for (GraphId i = 0; i < 5; ++i) log.Append(ChangeType::kAdd, i);
  const auto all = log.ExtractSince(0);
  EXPECT_EQ(all.size(), 5u);
  const auto tail = log.ExtractSince(3);
  ASSERT_EQ(tail.size(), 2u);
  EXPECT_EQ(tail[0].seq, 4u);
  EXPECT_EQ(tail[1].seq, 5u);
  EXPECT_TRUE(log.ExtractSince(5).empty());
  EXPECT_TRUE(log.ExtractSince(99).empty());
}

TEST(ChangeLogTest, HasChangesSince) {
  ChangeLog log;
  log.Append(ChangeType::kAdd, 0);
  EXPECT_TRUE(log.HasChangesSince(0));
  EXPECT_FALSE(log.HasChangesSince(1));
  EXPECT_FALSE(log.HasChangesSince(2));
}

TEST(ChangeLogTest, ChangeTypeNames) {
  EXPECT_EQ(ChangeTypeName(ChangeType::kAdd), "ADD");
  EXPECT_EQ(ChangeTypeName(ChangeType::kDelete), "DEL");
  EXPECT_EQ(ChangeTypeName(ChangeType::kEdgeAdd), "UA");
  EXPECT_EQ(ChangeTypeName(ChangeType::kEdgeRemove), "UR");
}

}  // namespace
}  // namespace gcp
