#include "dataset/aids_like.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <map>

namespace gcp {
namespace {

AidsLikeOptions SmallOptions(std::uint32_t n) {
  AidsLikeOptions opts;
  opts.num_graphs = n;
  return opts;
}

TEST(AidsLikeTest, GeneratesRequestedCount) {
  AidsLikeGenerator gen(SmallOptions(50));
  EXPECT_EQ(gen.Generate().size(), 50u);
}

TEST(AidsLikeTest, SizesWithinBounds) {
  AidsLikeGenerator gen(SmallOptions(200));
  for (const Graph& g : gen.Generate()) {
    EXPECT_GE(g.NumVertices(), gen.options().min_vertices);
    EXPECT_LE(g.NumVertices(), gen.options().max_vertices);
  }
}

TEST(AidsLikeTest, ShapeStatisticsApproximatePaper) {
  // Mean ≈ 45 vertices and edges ≈ 1.045 × vertices (AIDS: 45 / 47).
  AidsLikeGenerator gen(SmallOptions(1500));
  const auto graphs = gen.Generate();
  double v_sum = 0, e_sum = 0;
  for (const Graph& g : graphs) {
    v_sum += static_cast<double>(g.NumVertices());
    e_sum += static_cast<double>(g.NumEdges());
  }
  const double v_mean = v_sum / static_cast<double>(graphs.size());
  const double e_mean = e_sum / static_cast<double>(graphs.size());
  EXPECT_NEAR(v_mean, 45.0, 5.0);
  EXPECT_NEAR(e_mean / v_mean, 1.045, 0.08);
}

TEST(AidsLikeTest, MoleculesAreConnectedWithValenceCap) {
  AidsLikeGenerator gen(SmallOptions(100));
  for (const Graph& g : gen.Generate()) {
    EXPECT_TRUE(g.IsConnected());
    for (VertexId v = 0; v < g.NumVertices(); ++v) {
      EXPECT_LE(g.degree(v), gen.options().max_degree);
    }
  }
}

TEST(AidsLikeTest, LabelsSkewedCarbonLike) {
  AidsLikeGenerator gen(SmallOptions(300));
  std::map<Label, std::size_t> counts;
  std::size_t total = 0;
  for (const Graph& g : gen.Generate()) {
    for (VertexId v = 0; v < g.NumVertices(); ++v) {
      ++counts[g.label(v)];
      ++total;
    }
  }
  // Rank-0 label dominates (carbon-like), and labels stay in range.
  ASSERT_TRUE(counts.count(0));
  EXPECT_GT(static_cast<double>(counts[0]) / static_cast<double>(total), 0.3);
  for (const auto& [label, count] : counts) {
    EXPECT_LT(label, gen.options().num_labels);
  }
  // Rank order approximately monotone at the head of the distribution.
  EXPECT_GT(counts[0], counts.count(5) ? counts[5] : 0u);
}

TEST(AidsLikeTest, DeterministicBySeed) {
  AidsLikeOptions opts = SmallOptions(20);
  opts.seed = 77;
  const auto a = AidsLikeGenerator(opts).Generate();
  const auto b = AidsLikeGenerator(opts).Generate();
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a[i], b[i]);
  opts.seed = 78;
  const auto c = AidsLikeGenerator(opts).Generate();
  bool any_diff = false;
  for (std::size_t i = 0; i < a.size(); ++i) any_diff |= !(a[i] == c[i]);
  EXPECT_TRUE(any_diff);
}

TEST(AidsLikeTest, GenerateOneRespectsExactSize) {
  AidsLikeGenerator gen(SmallOptions(1));
  const Graph g = gen.GenerateOne(33);
  EXPECT_EQ(g.NumVertices(), 33u);
  EXPECT_TRUE(g.IsConnected());
}

TEST(AidsLikeTest, SampleSizeDistributionHasTail) {
  AidsLikeGenerator gen(SmallOptions(1));
  std::uint32_t max_seen = 0;
  double sum = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const auto s = gen.SampleSize();
    max_seen = std::max(max_seen, s);
    sum += s;
  }
  EXPECT_NEAR(sum / n, 45.0, 3.0);
  // Log-normal tail: some graphs are an order of magnitude larger than the
  // mean (paper: "the few largest graphs have an order of magnitude more").
  EXPECT_GT(max_seen, 120u);
}

}  // namespace
}  // namespace gcp
