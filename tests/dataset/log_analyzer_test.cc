// Algorithm 1 semantics: CT counts every operation per graph; CA and CR
// count only UA resp. UR operations.

#include "dataset/log_analyzer.hpp"

#include <gtest/gtest.h>

#include "dataset/change_log.hpp"

namespace gcp {
namespace {

std::vector<ChangeRecord> Records(
    std::initializer_list<std::pair<ChangeType, GraphId>> ops) {
  ChangeLog log;
  for (const auto& [type, id] : ops) log.Append(type, id);
  return log.ExtractSince(0);
}

TEST(LogAnalyzerTest, EmptyLogYieldsEmptyCounters) {
  const ChangeCounters c = LogAnalyzer::Analyze({});
  EXPECT_TRUE(c.empty());
  EXPECT_TRUE(c.total.empty());
  EXPECT_TRUE(c.edge_adds.empty());
  EXPECT_TRUE(c.edge_removes.empty());
}

TEST(LogAnalyzerTest, CountsTotalsPerGraph) {
  const ChangeCounters c = LogAnalyzer::Analyze(Records({
      {ChangeType::kEdgeAdd, 3},
      {ChangeType::kEdgeAdd, 3},
      {ChangeType::kEdgeRemove, 3},
      {ChangeType::kAdd, 4},
      {ChangeType::kDelete, 0},
  }));
  EXPECT_EQ(c.total.at(3), 3u);
  EXPECT_EQ(c.total.at(4), 1u);
  EXPECT_EQ(c.total.at(0), 1u);
  EXPECT_EQ(c.edge_adds.at(3), 2u);
  EXPECT_EQ(c.edge_removes.at(3), 1u);
  EXPECT_EQ(c.edge_adds.count(4), 0u);
  EXPECT_EQ(c.edge_removes.count(0), 0u);
}

TEST(LogAnalyzerTest, UaExclusiveDetection) {
  const ChangeCounters c = LogAnalyzer::Analyze(Records({
      {ChangeType::kEdgeAdd, 1},
      {ChangeType::kEdgeAdd, 1},
      {ChangeType::kEdgeAdd, 2},
      {ChangeType::kEdgeRemove, 2},
  }));
  EXPECT_TRUE(c.IsUaExclusive(1));    // only UA ops
  EXPECT_FALSE(c.IsUaExclusive(2));   // mixed UA + UR
  EXPECT_FALSE(c.IsUrExclusive(2));
  EXPECT_FALSE(c.IsUaExclusive(99));  // untouched graph
}

TEST(LogAnalyzerTest, UrExclusiveDetection) {
  const ChangeCounters c = LogAnalyzer::Analyze(Records({
      {ChangeType::kEdgeRemove, 5},
      {ChangeType::kEdgeRemove, 5},
  }));
  EXPECT_TRUE(c.IsUrExclusive(5));
  EXPECT_FALSE(c.IsUaExclusive(5));
}

TEST(LogAnalyzerTest, AddAndDeleteAreNeverExclusive) {
  const ChangeCounters c = LogAnalyzer::Analyze(Records({
      {ChangeType::kAdd, 8},
      {ChangeType::kDelete, 9},
  }));
  EXPECT_FALSE(c.IsUaExclusive(8));
  EXPECT_FALSE(c.IsUrExclusive(8));
  EXPECT_FALSE(c.IsUaExclusive(9));
  EXPECT_FALSE(c.IsUrExclusive(9));
  EXPECT_EQ(c.total.at(8), 1u);
  EXPECT_EQ(c.total.at(9), 1u);
}

TEST(LogAnalyzerTest, UaThenDeleteBreaksExclusivity) {
  const ChangeCounters c = LogAnalyzer::Analyze(Records({
      {ChangeType::kEdgeAdd, 2},
      {ChangeType::kDelete, 2},
  }));
  EXPECT_FALSE(c.IsUaExclusive(2));
  EXPECT_EQ(c.total.at(2), 2u);
  EXPECT_EQ(c.edge_adds.at(2), 1u);
}

TEST(LogAnalyzerTest, ManyGraphsIndependentCounters) {
  std::vector<ChangeRecord> records;
  ChangeLog log;
  for (GraphId id = 0; id < 100; ++id) {
    for (GraphId k = 0; k <= id % 3; ++k) {
      log.Append(ChangeType::kEdgeAdd, id);
    }
  }
  const ChangeCounters c = LogAnalyzer::Analyze(log.ExtractSince(0));
  for (GraphId id = 0; id < 100; ++id) {
    EXPECT_EQ(c.total.at(id), id % 3 + 1);
    EXPECT_TRUE(c.IsUaExclusive(id));
  }
}

}  // namespace
}  // namespace gcp
