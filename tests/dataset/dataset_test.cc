#include "dataset/dataset.hpp"

#include <gtest/gtest.h>

#include "../test_util.hpp"

namespace gcp {
namespace {

using testing::MakeCycle;
using testing::MakePath;

GraphDataset MakeDataset(std::size_t n) {
  std::vector<Graph> graphs;
  for (std::size_t i = 0; i < n; ++i) {
    graphs.push_back(MakePath({static_cast<Label>(i), 0, 1}));
  }
  GraphDataset ds;
  ds.Bootstrap(std::move(graphs));
  return ds;
}

TEST(DatasetTest, BootstrapDoesNotLog) {
  const GraphDataset ds = MakeDataset(4);
  EXPECT_EQ(ds.NumLive(), 4u);
  EXPECT_EQ(ds.IdHorizon(), 4u);
  EXPECT_EQ(ds.log().size(), 0u);
  EXPECT_EQ(ds.log().LatestSeq(), 0u);
}

TEST(DatasetTest, AddGraphAssignsNextIdAndLogs) {
  GraphDataset ds = MakeDataset(2);
  const GraphId id = ds.AddGraph(MakeCycle({0, 1, 2}));
  EXPECT_EQ(id, 2u);
  EXPECT_EQ(ds.IdHorizon(), 3u);
  EXPECT_EQ(ds.NumLive(), 3u);
  ASSERT_EQ(ds.log().size(), 1u);
  EXPECT_EQ(ds.log().records()[0].type, ChangeType::kAdd);
  EXPECT_EQ(ds.log().records()[0].graph_id, 2u);
}

TEST(DatasetTest, DeleteLeavesHole) {
  GraphDataset ds = MakeDataset(3);
  ASSERT_TRUE(ds.DeleteGraph(1).ok());
  EXPECT_FALSE(ds.IsLive(1));
  EXPECT_TRUE(ds.IsLive(0));
  EXPECT_TRUE(ds.IsLive(2));
  EXPECT_EQ(ds.NumLive(), 2u);
  EXPECT_EQ(ds.IdHorizon(), 3u);  // horizon unchanged: ids not reused
  EXPECT_EQ(ds.DeleteGraph(1).code(), StatusCode::kNotFound);
}

TEST(DatasetTest, IdsNeverReused) {
  GraphDataset ds = MakeDataset(2);
  ASSERT_TRUE(ds.DeleteGraph(1).ok());
  const GraphId id = ds.AddGraph(MakePath({9, 9}));
  EXPECT_EQ(id, 2u);  // not 1
  EXPECT_FALSE(ds.IsLive(1));
}

TEST(DatasetTest, EdgeMutationsLogUaUr) {
  GraphDataset ds = MakeDataset(1);  // path 0-1-2
  ASSERT_TRUE(ds.AddEdge(0, 0, 2).ok());
  ASSERT_TRUE(ds.RemoveEdge(0, 0, 1).ok());
  ASSERT_EQ(ds.log().size(), 2u);
  EXPECT_EQ(ds.log().records()[0].type, ChangeType::kEdgeAdd);
  EXPECT_EQ(ds.log().records()[1].type, ChangeType::kEdgeRemove);
  EXPECT_EQ(ds.log().records()[1].edge_u, 0u);
  EXPECT_EQ(ds.log().records()[1].edge_v, 1u);
  EXPECT_TRUE(ds.graph(0).HasEdge(0, 2));
  EXPECT_FALSE(ds.graph(0).HasEdge(0, 1));
}

TEST(DatasetTest, EdgeMutationFailuresDoNotLog) {
  GraphDataset ds = MakeDataset(1);
  EXPECT_FALSE(ds.AddEdge(0, 0, 1).ok());     // already exists
  EXPECT_FALSE(ds.RemoveEdge(0, 0, 2).ok());  // absent
  EXPECT_FALSE(ds.AddEdge(9, 0, 1).ok());     // unknown graph
  EXPECT_EQ(ds.log().size(), 0u);
}

TEST(DatasetTest, LiveMaskTracksHoles) {
  GraphDataset ds = MakeDataset(4);
  ds.DeleteGraph(2).ok();
  const DynamicBitset mask = ds.LiveMask();
  EXPECT_EQ(mask.size(), 4u);
  EXPECT_TRUE(mask.Test(0));
  EXPECT_TRUE(mask.Test(1));
  EXPECT_FALSE(mask.Test(2));
  EXPECT_TRUE(mask.Test(3));
  EXPECT_EQ(ds.LiveIds(), (std::vector<GraphId>{0, 1, 3}));
}

TEST(DatasetTest, TotalsOverLiveOnly) {
  GraphDataset ds = MakeDataset(3);  // each path: 3 vertices, 2 edges
  EXPECT_EQ(ds.TotalLiveVertices(), 9u);
  EXPECT_EQ(ds.TotalLiveEdges(), 6u);
  ds.DeleteGraph(0).ok();
  EXPECT_EQ(ds.TotalLiveVertices(), 6u);
  EXPECT_EQ(ds.TotalLiveEdges(), 4u);
}

TEST(DatasetTest, MutationsOnDeletedGraphFail) {
  GraphDataset ds = MakeDataset(2);
  ds.DeleteGraph(0).ok();
  EXPECT_EQ(ds.AddEdge(0, 0, 2).code(), StatusCode::kNotFound);
  EXPECT_EQ(ds.RemoveEdge(0, 0, 1).code(), StatusCode::kNotFound);
}

}  // namespace
}  // namespace gcp
