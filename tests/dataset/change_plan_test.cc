#include "dataset/change_plan.hpp"

#include <gtest/gtest.h>

#include "../test_util.hpp"
#include "dataset/aids_like.hpp"

namespace gcp {
namespace {

std::vector<Graph> SmallCorpus(std::size_t n) {
  AidsLikeOptions opts;
  opts.num_graphs = static_cast<std::uint32_t>(n);
  opts.mean_vertices = 10;
  opts.stddev_vertices = 3;
  opts.min_vertices = 4;
  opts.max_vertices = 20;
  return AidsLikeGenerator(opts).Generate();
}

TEST(ChangePlanTest, GenerateShapeMatchesRequest) {
  Rng rng(1);
  const ChangePlan plan = ChangePlan::Generate(rng, 1000, 10, 20, 50);
  EXPECT_EQ(plan.batches.size(), 10u);
  EXPECT_EQ(plan.TotalOps(), 200u);
  for (const auto& batch : plan.batches) {
    EXPECT_LT(batch.at_query, 1000u);
    EXPECT_EQ(batch.ops.size(), 20u);
  }
}

TEST(ChangePlanTest, BatchesSortedByTime) {
  Rng rng(2);
  const ChangePlan plan = ChangePlan::Generate(rng, 500, 40, 5, 10);
  for (std::size_t i = 1; i < plan.batches.size(); ++i) {
    EXPECT_LE(plan.batches[i - 1].at_query, plan.batches[i].at_query);
  }
}

TEST(ChangePlanTest, AddSourcesWithinInitialPool) {
  Rng rng(3);
  const ChangePlan plan = ChangePlan::Generate(rng, 100, 20, 10, 7);
  for (const auto& batch : plan.batches) {
    for (const auto& op : batch.ops) {
      if (op.type == ChangeType::kAdd) {
        EXPECT_LT(op.add_source, 7u);
      }
    }
  }
}

TEST(ChangePlanTest, AllTypesAppear) {
  Rng rng(4);
  const ChangePlan plan = ChangePlan::Generate(rng, 100, 20, 20, 5);
  bool saw[4] = {false, false, false, false};
  for (const auto& batch : plan.batches) {
    for (const auto& op : batch.ops) {
      saw[static_cast<int>(op.type)] = true;
    }
  }
  EXPECT_TRUE(saw[0] && saw[1] && saw[2] && saw[3]);
}

TEST(ChangePlanExecutorTest, AdvanceFiresDueBatchesOnce) {
  const auto initial = SmallCorpus(20);
  GraphDataset ds;
  ds.Bootstrap(initial);
  Rng rng(5);
  ChangePlan plan = ChangePlan::Generate(rng, 100, 10, 4, 20);
  ChangePlanExecutor exec(plan, initial, ds, Rng(99));

  std::size_t applied = 0;
  for (std::uint32_t q = 0; q < 100; ++q) {
    applied += exec.AdvanceTo(q);
  }
  EXPECT_TRUE(exec.Exhausted());
  EXPECT_EQ(applied, exec.ops_applied());
  EXPECT_EQ(exec.ops_applied() + exec.ops_skipped(), plan.TotalOps());
  // A later advance is a no-op.
  EXPECT_EQ(exec.AdvanceTo(1000), 0u);
}

TEST(ChangePlanExecutorTest, OperationsRespectConstraints) {
  // GraphDataset only logs operations it accepted (UA on a non-edge, UR on
  // an existing edge, DEL on a live graph), so after a substantial plan the
  // log and the final state must reconcile exactly.
  const auto initial = SmallCorpus(30);
  GraphDataset ds;
  ds.Bootstrap(initial);
  Rng rng(6);
  ChangePlan plan = ChangePlan::Generate(
      rng, 50, 25, 8, static_cast<std::uint32_t>(initial.size()));
  ChangePlanExecutor exec(plan, initial, ds, Rng(7));
  exec.AdvanceTo(49);

  std::size_t adds = 0, dels = 0;
  std::vector<bool> touched(ds.IdHorizon(), false);
  for (const ChangeRecord& r : ds.log().records()) {
    touched[r.graph_id] = true;
    if (r.type == ChangeType::kAdd) {
      ++adds;
      EXPECT_GE(r.graph_id, initial.size()) << "ADD ids extend the horizon";
    }
    if (r.type == ChangeType::kDelete) ++dels;
  }
  EXPECT_EQ(ds.log().size(), exec.ops_applied());
  EXPECT_EQ(ds.IdHorizon(), initial.size() + adds);
  EXPECT_EQ(ds.NumLive(), initial.size() + adds - dels);
  // Untouched initial graphs are bit-identical to their bootstrap state.
  for (GraphId id = 0; id < initial.size(); ++id) {
    if (!touched[id]) {
      ASSERT_TRUE(ds.IsLive(id));
      EXPECT_EQ(ds.graph(id), initial[id]);
    }
  }
}

TEST(ChangePlanExecutorTest, DeterministicAcrossRuns) {
  const auto initial = SmallCorpus(15);
  Rng rng(8);
  const ChangePlan plan = ChangePlan::Generate(
      rng, 60, 12, 5, static_cast<std::uint32_t>(initial.size()));

  auto run = [&]() {
    GraphDataset ds;
    ds.Bootstrap(initial);
    ChangePlanExecutor exec(plan, initial, ds, Rng(12345));
    for (std::uint32_t q = 0; q < 60; ++q) exec.AdvanceTo(q);
    return ds.log().records();
  };
  const auto a = run();
  const auto b = run();
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].type, b[i].type);
    EXPECT_EQ(a[i].graph_id, b[i].graph_id);
    EXPECT_EQ(a[i].edge_u, b[i].edge_u);
    EXPECT_EQ(a[i].edge_v, b[i].edge_v);
  }
}

TEST(ChangePlanExecutorTest, AddCopiesInitialGraph) {
  const auto initial = SmallCorpus(5);
  GraphDataset ds;
  ds.Bootstrap(initial);
  ChangePlan plan;
  PlannedBatch batch;
  batch.at_query = 0;
  batch.ops.push_back({ChangeType::kAdd, 3});
  plan.batches.push_back(batch);
  ChangePlanExecutor exec(plan, initial, ds, Rng(1));
  exec.AdvanceTo(0);
  ASSERT_EQ(ds.IdHorizon(), 6u);
  EXPECT_EQ(ds.graph(5), initial[3]);
}

}  // namespace
}  // namespace gcp
